//! Synthetic trace generation calibrated to the paper's Table 2.

use crate::{FileSet, Trace};
use l2s_util::{cast, DetRng};
use l2s_zipf::{ZipfLaw, ZipfSampler};

/// A recipe for a synthetic WWW trace, pinned to the statistics the
/// paper reports per trace in Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpec {
    /// Trace name.
    pub name: String,
    /// Number of files in the population.
    pub num_files: usize,
    /// Target mean file size in KB.
    pub avg_file_kb: f64,
    /// Number of requests to generate.
    pub num_requests: usize,
    /// Target request-frequency-weighted mean size in KB. Popular WWW
    /// files are smaller than average, so this is usually below
    /// `avg_file_kb`.
    pub avg_request_kb: f64,
    /// Zipf exponent of the popularity law.
    pub alpha: f64,
    /// Shape (`σ` of the underlying normal) of the lognormal file-size
    /// distribution. WWW file sizes are heavy tailed; 1.4 is a typical
    /// fit for late-90s server logs.
    pub size_sigma: f64,
    /// Temporal-locality strength: probability that a request re-references
    /// a file from the recent-request window instead of drawing fresh from
    /// the popularity law. Real WWW logs exhibit strong recency beyond
    /// their stationary popularity skew; without this component a
    /// sequential 32 MB LRU sees 40-70 % misses on the Table 2 workloads,
    /// far above the 9-28 % band the paper reports. 0 disables.
    pub temporal: f64,
    /// Size of the recent-request window re-references draw from.
    pub temporal_window: usize,
}

impl TraceSpec {
    /// University of Calgary trace (Table 2, row 1).
    pub fn calgary() -> Self {
        TraceSpec {
            name: "calgary".into(),
            num_files: 8_397,
            avg_file_kb: 42.9,
            num_requests: 567_895,
            avg_request_kb: 19.7,
            alpha: 1.08,
            size_sigma: 1.4,
            temporal: 0.5,
            temporal_window: 1_000,
        }
    }

    /// Clarknet (commercial ISP) trace (Table 2, row 2).
    pub fn clarknet() -> Self {
        TraceSpec {
            name: "clarknet".into(),
            num_files: 35_885,
            avg_file_kb: 11.6,
            num_requests: 3_053_525,
            avg_request_kb: 11.9,
            alpha: 0.78,
            size_sigma: 1.4,
            temporal: 0.6,
            temporal_window: 1_000,
        }
    }

    /// NASA Kennedy Space Center trace (Table 2, row 3).
    pub fn nasa() -> Self {
        TraceSpec {
            name: "nasa".into(),
            num_files: 5_500,
            avg_file_kb: 53.7,
            num_requests: 3_147_719,
            avg_request_kb: 47.0,
            alpha: 0.91,
            size_sigma: 1.4,
            temporal: 0.5,
            temporal_window: 1_000,
        }
    }

    /// Rutgers CS departmental server trace (Table 2, row 4).
    pub fn rutgers() -> Self {
        TraceSpec {
            name: "rutgers".into(),
            num_files: 24_098,
            avg_file_kb: 30.5,
            num_requests: 535_021,
            avg_request_kb: 26.2,
            alpha: 0.79,
            size_sigma: 1.4,
            temporal: 0.6,
            temporal_window: 1_000,
        }
    }

    /// All four Table 2 presets, in the paper's order.
    pub fn paper_presets() -> Vec<TraceSpec> {
        vec![
            Self::calgary(),
            Self::clarknet(),
            Self::nasa(),
            Self::rutgers(),
        ]
    }

    /// A smaller spec with the same size/popularity structure, for tests
    /// and examples. A zero count is rejected by `invariant!`.
    pub fn scaled(&self, num_files: usize, num_requests: usize) -> TraceSpec {
        l2s_util::invariant!(
            num_files > 0 && num_requests > 0,
            "scaled trace needs at least one file and one request"
        );
        TraceSpec {
            num_files,
            num_requests,
            ..self.clone()
        }
    }

    /// Generates the trace deterministically from `seed`.
    ///
    /// Steps:
    /// 1. draw `num_files` lognormal sizes and rescale them so the sample
    ///    mean is exactly `avg_file_kb`;
    /// 2. assign sizes to popularity ranks with a *noisy ascending sort*
    ///    whose noise is bisected so the Zipf-weighted mean size matches
    ///    `avg_request_kb` (clamped to the attainable range);
    /// 3. sample `num_requests` ranks from a Zipf(`alpha`) law.
    ///
    /// File ids are a random permutation of ranks so that id order
    /// carries no popularity information.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed ^ 0x5eed_7ace);
        let mut size_rng = rng.fork();
        let mut assign_rng = rng.fork();
        let mut req_rng = rng.fork();
        let mut perm_rng = rng.fork();

        // 1. Sizes, rescaled to the exact target mean, clamped to a
        // sensible range (100 bytes .. 16 MB).
        let sigma = self.size_sigma;
        let mu = self.avg_file_kb.ln() - sigma * sigma / 2.0;
        let mut sizes: Vec<f64> = (0..self.num_files)
            .map(|_| size_rng.lognormal(mu, sigma).clamp(0.1, 16_384.0))
            .collect();
        let mean: f64 = sizes.iter().sum::<f64>() / cast::len_f64(sizes.len());
        let scale = self.avg_file_kb / mean;
        for s in &mut sizes {
            *s = (*s * scale).clamp(0.05, 32_768.0);
        }

        // 2. Rank -> size assignment via calibrated noisy sort.
        let law = ZipfLaw::new(cast::len_f64(self.num_files), self.alpha);
        let probs: Vec<f64> = (1..=cast::len_u64(self.num_files))
            .map(|r| law.rank_probability(r))
            .collect();
        let rank_sizes = assign_sizes(&mut assign_rng, &sizes, &probs, self.avg_request_kb);

        // 3. Requests over ranks, then relabel ranks with shuffled ids.
        // With probability `temporal` a request re-references a file from
        // the recent-request window (uniformly), modeling the recency
        // bursts of real access logs on top of the stationary Zipf law.
        let sampler = ZipfSampler::new(self.num_files, self.alpha);
        let mut rank_to_id: Vec<u32> = (0..cast::index_u32(self.num_files)).collect();
        perm_rng.shuffle(&mut rank_to_id);
        let mut sizes_by_id = vec![0.0; self.num_files];
        for (rank, &id) in rank_to_id.iter().enumerate() {
            sizes_by_id[cast::wide_usize(id)] = rank_sizes[rank];
        }
        let window = self.temporal_window.max(1);
        let mut recent: Vec<u32> = Vec::with_capacity(window);
        let mut cursor = 0usize;
        let mut requests: Vec<u32> = Vec::with_capacity(self.num_requests);
        for _ in 0..self.num_requests {
            let file = if self.temporal > 0.0 && !recent.is_empty() && req_rng.chance(self.temporal)
            {
                recent[req_rng.index(recent.len())]
            } else {
                rank_to_id[cast::index_usize(sampler.sample(&mut req_rng) - 1)]
            };
            if recent.len() < window {
                recent.push(file);
            } else {
                recent[cursor] = file;
                cursor = (cursor + 1) % window;
            }
            requests.push(file);
        }

        Trace::new(self.name.clone(), FileSet::new(sizes_by_id), requests)
    }
}

/// Assigns `sizes` to popularity ranks so the probability-weighted mean
/// approximates `target_kb`.
///
/// A rank's size is chosen by sorting keys `i + noise·N(0,1)·n`: zero
/// noise yields perfect (ascending) popularity–size correlation — the
/// smallest attainable weighted mean — while infinite noise yields a
/// random assignment whose weighted mean is the population mean. The
/// noise level is found by bisection. Targets above the population mean
/// use a descending base sort instead.
fn assign_sizes(rng: &mut DetRng, sizes: &[f64], probs: &[f64], target_kb: f64) -> Vec<f64> {
    let n = sizes.len();
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let population_mean: f64 = sizes.iter().sum::<f64>() / cast::len_f64(n);
    let ascending = target_kb <= population_mean;
    if !ascending {
        sorted.reverse();
    }

    // Fixed per-rank noise draws so the bisection is over a deterministic
    // family of permutations.
    let noise: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    let weighted = |assignment: &[f64]| -> f64 {
        assignment
            .iter()
            .zip(probs)
            .map(|(s, p)| s * p)
            .sum::<f64>()
    };
    let build = |eta: f64| -> Vec<f64> {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            let ka = cast::len_f64(a) + eta * cast::len_f64(n) * noise[a];
            let kb = cast::len_f64(b) + eta * cast::len_f64(n) * noise[b];
            ka.total_cmp(&kb)
        });
        // order[rank] = which sorted-size slot rank gets.
        order.iter().map(|&slot| sorted[slot]).collect()
    };

    // Attainable range: eta = 0 is the extreme correlation; huge eta is
    // random (mean). Clamp the target accordingly.
    let extreme = weighted(&build(0.0));
    let target = if ascending {
        target_kb.clamp(extreme.min(population_mean), population_mean.max(extreme))
    } else {
        target_kb.clamp(population_mean.min(extreme), extreme.max(population_mean))
    };

    let (mut lo, mut hi) = (0.0_f64, 64.0_f64);
    let mut best = build(0.0);
    let mut best_err = (weighted(&best) - target).abs();
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let candidate = build(mid);
        let w = weighted(&candidate);
        let err = (w - target).abs();
        if err < best_err {
            best = candidate;
            best_err = err;
        }
        // More noise always moves the weighted mean towards the
        // population mean, i.e. away from the eta = 0 extreme.
        let toward_mean_of = |x: f64| (x - population_mean).abs();
        if toward_mean_of(w) > toward_mean_of(target) {
            lo = mid; // still too extreme -> need more noise
        } else {
            hi = mid; // too washed out -> need less noise
        }
        if best_err / target.max(1e-9) < 0.005 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn presets_match_table_2() {
        let presets = TraceSpec::paper_presets();
        assert_eq!(presets.len(), 4);
        let calgary = &presets[0];
        assert_eq!(calgary.num_files, 8_397);
        assert_eq!(calgary.num_requests, 567_895);
        assert!((calgary.avg_file_kb - 42.9).abs() < 1e-12);
        assert!((calgary.alpha - 1.08).abs() < 1e-12);
        let clarknet = &presets[1];
        assert_eq!(clarknet.num_files, 35_885);
        assert!((clarknet.avg_request_kb - 11.9).abs() < 1e-12);
    }

    #[test]
    fn generated_trace_has_requested_shape() {
        let spec = TraceSpec::calgary().scaled(1_500, 60_000);
        let t = spec.generate(11);
        assert_eq!(t.files().len(), 1_500);
        assert_eq!(t.len(), 60_000);
    }

    #[test]
    fn mean_file_size_is_calibrated() {
        for spec in TraceSpec::paper_presets() {
            let small = spec.scaled(2_000, 50_000);
            let t = small.generate(7);
            let mean = t.files().avg_file_kb();
            assert!(
                (mean / spec.avg_file_kb - 1.0).abs() < 0.02,
                "{}: mean {mean} vs target {}",
                spec.name,
                spec.avg_file_kb
            );
        }
    }

    #[test]
    fn mean_request_size_is_calibrated() {
        for spec in TraceSpec::paper_presets() {
            let small = spec.scaled(2_000, 200_000);
            let t = small.generate(13);
            let mean = t.avg_request_kb();
            assert!(
                (mean / spec.avg_request_kb - 1.0).abs() < 0.15,
                "{}: request mean {mean} vs target {}",
                spec.name,
                spec.avg_request_kb
            );
        }
    }

    #[test]
    fn popularity_follows_zipf() {
        let spec = TraceSpec::clarknet().scaled(1_000, 300_000);
        let t = spec.generate(17);
        let est = crate::stats::estimate_alpha(&t);
        assert!(
            (est - spec.alpha).abs() < 0.15,
            "estimated alpha {est} vs {}",
            spec.alpha
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TraceSpec::nasa().scaled(500, 5_000);
        let a = spec.generate(3);
        let b = spec.generate(3);
        assert_eq!(a, b);
        let c = spec.generate(4);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn file_ids_carry_no_popularity_order() {
        // The most popular file should not systematically be id 0.
        let spec = TraceSpec::calgary().scaled(300, 30_000);
        let hot_ids: Vec<u32> = (0..5)
            .map(|seed| {
                let t = spec.generate(seed);
                let counts = t.request_counts();
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i as u32)
                    .unwrap()
            })
            .collect();
        assert!(
            hot_ids.iter().any(|&id| id != hot_ids[0]),
            "hottest file always the same id: {hot_ids:?}"
        );
    }

    #[test]
    fn stats_pipeline_reports_presets() {
        let spec = TraceSpec::rutgers().scaled(1_000, 100_000);
        let t = spec.generate(23);
        let s = TraceStats::compute(&t);
        assert_eq!(s.num_files, 1_000);
        assert_eq!(s.num_requests, 100_000);
        assert!(s.working_set_kb > 0.0);
        assert!(s.distinct_files <= 1_000);
    }

    #[test]
    fn clarknet_request_mean_can_exceed_file_mean() {
        // Clarknet's Table 2 row has avg request (11.9) > avg file (11.6):
        // the noisy sort must support (mild) descending correlation too.
        let spec = TraceSpec::clarknet().scaled(3_000, 200_000);
        let t = spec.generate(29);
        assert!(
            t.avg_request_kb() > t.files().avg_file_kb() * 0.95,
            "req mean {} should be near/above file mean {}",
            t.avg_request_kb(),
            t.files().avg_file_kb()
        );
    }
}
