//! Synthetic trace generation calibrated to the paper's Table 2.

use crate::{FileSet, Trace};
use l2s_util::{cast, DetRng};
use l2s_zipf::{ZipfLaw, ZipfSampler};

/// A recipe for a synthetic WWW trace, pinned to the statistics the
/// paper reports per trace in Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceSpec {
    /// Trace name.
    pub name: String,
    /// Number of files in the population.
    pub num_files: usize,
    /// Target mean file size in KB.
    pub avg_file_kb: f64,
    /// Number of requests to generate.
    pub num_requests: usize,
    /// Target request-frequency-weighted mean size in KB. Popular WWW
    /// files are smaller than average, so this is usually below
    /// `avg_file_kb`.
    pub avg_request_kb: f64,
    /// Zipf exponent of the popularity law.
    pub alpha: f64,
    /// Shape (`σ` of the underlying normal) of the lognormal file-size
    /// distribution. WWW file sizes are heavy tailed; 1.4 is a typical
    /// fit for late-90s server logs.
    pub size_sigma: f64,
    /// Temporal-locality strength: probability that a request re-references
    /// a file from the recent-request window instead of drawing fresh from
    /// the popularity law. Real WWW logs exhibit strong recency beyond
    /// their stationary popularity skew; without this component a
    /// sequential 32 MB LRU sees 40-70 % misses on the Table 2 workloads,
    /// far above the 9-28 % band the paper reports. 0 disables.
    pub temporal: f64,
    /// Size of the recent-request window re-references draw from.
    pub temporal_window: usize,
}

impl TraceSpec {
    /// University of Calgary trace (Table 2, row 1).
    pub fn calgary() -> Self {
        TraceSpec {
            name: "calgary".into(),
            num_files: 8_397,
            avg_file_kb: 42.9,
            num_requests: 567_895,
            avg_request_kb: 19.7,
            alpha: 1.08,
            size_sigma: 1.4,
            temporal: 0.5,
            temporal_window: 1_000,
        }
    }

    /// Clarknet (commercial ISP) trace (Table 2, row 2).
    pub fn clarknet() -> Self {
        TraceSpec {
            name: "clarknet".into(),
            num_files: 35_885,
            avg_file_kb: 11.6,
            num_requests: 3_053_525,
            avg_request_kb: 11.9,
            alpha: 0.78,
            size_sigma: 1.4,
            temporal: 0.6,
            temporal_window: 1_000,
        }
    }

    /// NASA Kennedy Space Center trace (Table 2, row 3).
    pub fn nasa() -> Self {
        TraceSpec {
            name: "nasa".into(),
            num_files: 5_500,
            avg_file_kb: 53.7,
            num_requests: 3_147_719,
            avg_request_kb: 47.0,
            alpha: 0.91,
            size_sigma: 1.4,
            temporal: 0.5,
            temporal_window: 1_000,
        }
    }

    /// Rutgers CS departmental server trace (Table 2, row 4).
    pub fn rutgers() -> Self {
        TraceSpec {
            name: "rutgers".into(),
            num_files: 24_098,
            avg_file_kb: 30.5,
            num_requests: 535_021,
            avg_request_kb: 26.2,
            alpha: 0.79,
            size_sigma: 1.4,
            temporal: 0.6,
            temporal_window: 1_000,
        }
    }

    /// All four Table 2 presets, in the paper's order.
    pub fn paper_presets() -> Vec<TraceSpec> {
        vec![
            Self::calgary(),
            Self::clarknet(),
            Self::nasa(),
            Self::rutgers(),
        ]
    }

    /// A smaller spec with the same size/popularity structure, for tests
    /// and examples. A zero count is rejected by `invariant!`.
    pub fn scaled(&self, num_files: usize, num_requests: usize) -> TraceSpec {
        l2s_util::invariant!(
            num_files > 0 && num_requests > 0,
            "scaled trace needs at least one file and one request"
        );
        TraceSpec {
            num_files,
            num_requests,
            ..self.clone()
        }
    }

    /// Generates the trace deterministically from `seed`, materializing
    /// every request. Delegates to [`TraceSpec::stream`], so the request
    /// sequence is byte-identical to what the streaming path yields —
    /// pinned by the `streaming` test module.
    pub fn generate(&self, seed: u64) -> Trace {
        let (files, stream) = self.stream(seed);
        let requests: Vec<u32> = stream.collect();
        Trace::new(self.name.clone(), files, requests)
    }

    /// Builds the file population and a *streaming* request generator —
    /// the memory-flat path: request count no longer bounds resident
    /// memory, so billion-request runs hold only the file table and the
    /// recency window.
    ///
    /// Steps:
    /// 1. draw `num_files` lognormal sizes and rescale them so the sample
    ///    mean is exactly `avg_file_kb`;
    /// 2. assign sizes to popularity ranks with a *noisy ascending sort*
    ///    whose noise is bisected so the Zipf-weighted mean size matches
    ///    `avg_request_kb` (clamped to the attainable range);
    /// 3. return a [`RequestStream`] sampling `num_requests` ranks from a
    ///    Zipf(`alpha`) law, with recency re-references.
    ///
    /// File ids are a random permutation of ranks so that id order
    /// carries no popularity information.
    pub fn stream(&self, seed: u64) -> (FileSet, RequestStream) {
        let mut rng = DetRng::new(seed ^ 0x5eed_7ace);
        let mut size_rng = rng.fork();
        let mut assign_rng = rng.fork();
        let req_rng = rng.fork();
        let mut perm_rng = rng.fork();

        // 1. Sizes, rescaled to the exact target mean, clamped to a
        // sensible range (100 bytes .. 16 MB).
        let sigma = self.size_sigma;
        let mu = self.avg_file_kb.ln() - sigma * sigma / 2.0;
        let mut sizes: Vec<f64> = (0..self.num_files)
            .map(|_| size_rng.lognormal(mu, sigma).clamp(0.1, 16_384.0))
            .collect();
        let mean: f64 = sizes.iter().sum::<f64>() / cast::len_f64(sizes.len());
        let scale = self.avg_file_kb / mean;
        for s in &mut sizes {
            *s = (*s * scale).clamp(0.05, 32_768.0);
        }

        // 2. Rank -> size assignment via calibrated noisy sort.
        let law = ZipfLaw::new(cast::len_f64(self.num_files), self.alpha);
        let probs = law.probabilities(self.num_files);
        let rank_sizes = assign_sizes(&mut assign_rng, &sizes, &probs, self.avg_request_kb);

        // 3. Relabel ranks with shuffled ids; requests are drawn lazily.
        let sampler = ZipfSampler::new(self.num_files, self.alpha);
        let mut rank_to_id: Vec<u32> = (0..cast::index_u32(self.num_files)).collect();
        perm_rng.shuffle(&mut rank_to_id);
        let mut sizes_by_id = vec![0.0; self.num_files];
        for (rank, &id) in rank_to_id.iter().enumerate() {
            sizes_by_id[cast::wide_usize(id)] = rank_sizes[rank];
        }
        let window = self.temporal_window.max(1);
        let stream = RequestStream {
            sampler,
            rank_to_id,
            temporal: self.temporal,
            window,
            recent: Vec::with_capacity(window),
            cursor: 0,
            rng: req_rng.clone(),
            rng0: req_rng,
            remaining: self.num_requests,
            total: self.num_requests,
        };
        (FileSet::new(sizes_by_id), stream)
    }
}

/// Lazily yields the request sequence of a [`TraceSpec`] — the same ids,
/// in the same order, as [`TraceSpec::generate`] materializes, but in
/// O(window) memory. With probability `temporal` a request re-references
/// a file from the recent-request window (uniformly), modeling the
/// recency bursts of real access logs on top of the stationary Zipf law.
#[derive(Clone, Debug)]
pub struct RequestStream {
    sampler: ZipfSampler,
    rank_to_id: Vec<u32>,
    temporal: f64,
    window: usize,
    recent: Vec<u32>,
    cursor: usize,
    rng: DetRng,
    /// Pristine copy of the request RNG, so `rewind` replays the exact
    /// sequence (the engine's warm-up pass needs two identical laps).
    rng0: DetRng,
    remaining: usize,
    total: usize,
}

impl RequestStream {
    /// Total number of requests the stream yields per lap.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Requests not yet yielded in the current lap.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Restarts the sequence from the first request.
    pub fn rewind(&mut self) {
        self.rng = self.rng0.clone();
        self.recent.clear();
        self.cursor = 0;
        self.remaining = self.total;
    }

    /// The popularity-rank → file-id relabeling this stream draws
    /// through (index = 0-based rank).
    pub fn rank_to_id(&self) -> &[u32] {
        &self.rank_to_id
    }

    /// Stationary per-*id* request probabilities of the underlying
    /// Zipf draw, dense by file id — the exact frequencies the sampler
    /// uses, routed through the rank relabeling. The temporal
    /// re-reference layer redraws from recent requests and so preserves
    /// these aggregates; analytic models that assume independent draws
    /// should validate against `temporal = 0` specs.
    pub fn probabilities_by_id(&self) -> Vec<f64> {
        let ranked = self.sampler.probabilities();
        let mut by_id = vec![0.0; ranked.len()];
        for (rank, &id) in self.rank_to_id.iter().enumerate() {
            by_id[cast::wide_usize(id)] = ranked[rank];
        }
        by_id
    }
}

impl Iterator for RequestStream {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let file =
            if self.temporal > 0.0 && !self.recent.is_empty() && self.rng.chance(self.temporal) {
                self.recent[self.rng.index(self.recent.len())]
            } else {
                self.rank_to_id[cast::index_usize(self.sampler.sample(&mut self.rng) - 1)]
            };
        if self.recent.len() < self.window {
            self.recent.push(file);
        } else {
            self.recent[self.cursor] = file;
            self.cursor = (self.cursor + 1) % self.window;
        }
        Some(file)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RequestStream {}

/// Assigns `sizes` to popularity ranks so the probability-weighted mean
/// approximates `target_kb`.
///
/// A rank's size is chosen by sorting keys `i + noise·N(0,1)·n`: zero
/// noise yields perfect (ascending) popularity–size correlation — the
/// smallest attainable weighted mean — while infinite noise yields a
/// random assignment whose weighted mean is the population mean. The
/// noise level is found by bisection. Targets above the population mean
/// use a descending base sort instead.
fn assign_sizes(rng: &mut DetRng, sizes: &[f64], probs: &[f64], target_kb: f64) -> Vec<f64> {
    let n = sizes.len();
    let mut sorted = sizes.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let population_mean: f64 = sizes.iter().sum::<f64>() / cast::len_f64(n);
    let ascending = target_kb <= population_mean;
    if !ascending {
        sorted.reverse();
    }

    // Fixed per-rank noise draws so the bisection is over a deterministic
    // family of permutations.
    let noise: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
    let weighted = |assignment: &[f64]| -> f64 {
        assignment
            .iter()
            .zip(probs)
            .map(|(s, p)| s * p)
            .sum::<f64>()
    };
    let build = |eta: f64| -> Vec<f64> {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            let ka = cast::len_f64(a) + eta * cast::len_f64(n) * noise[a];
            let kb = cast::len_f64(b) + eta * cast::len_f64(n) * noise[b];
            ka.total_cmp(&kb)
        });
        // order[rank] = which sorted-size slot rank gets.
        order.iter().map(|&slot| sorted[slot]).collect()
    };

    // Attainable range: eta = 0 is the extreme correlation; huge eta is
    // random (mean). Clamp the target accordingly.
    let extreme = weighted(&build(0.0));
    let target = if ascending {
        target_kb.clamp(extreme.min(population_mean), population_mean.max(extreme))
    } else {
        target_kb.clamp(population_mean.min(extreme), extreme.max(population_mean))
    };

    let (mut lo, mut hi) = (0.0_f64, 64.0_f64);
    let mut best = build(0.0);
    let mut best_err = (weighted(&best) - target).abs();
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        let candidate = build(mid);
        let w = weighted(&candidate);
        let err = (w - target).abs();
        if err < best_err {
            best = candidate;
            best_err = err;
        }
        // More noise always moves the weighted mean towards the
        // population mean, i.e. away from the eta = 0 extreme.
        let toward_mean_of = |x: f64| (x - population_mean).abs();
        if toward_mean_of(w) > toward_mean_of(target) {
            lo = mid; // still too extreme -> need more noise
        } else {
            hi = mid; // too washed out -> need less noise
        }
        if best_err / target.max(1e-9) < 0.005 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceStats;

    #[test]
    fn presets_match_table_2() {
        let presets = TraceSpec::paper_presets();
        assert_eq!(presets.len(), 4);
        let calgary = &presets[0];
        assert_eq!(calgary.num_files, 8_397);
        assert_eq!(calgary.num_requests, 567_895);
        assert!((calgary.avg_file_kb - 42.9).abs() < 1e-12);
        assert!((calgary.alpha - 1.08).abs() < 1e-12);
        let clarknet = &presets[1];
        assert_eq!(clarknet.num_files, 35_885);
        assert!((clarknet.avg_request_kb - 11.9).abs() < 1e-12);
    }

    #[test]
    fn generated_trace_has_requested_shape() {
        let spec = TraceSpec::calgary().scaled(1_500, 60_000);
        let t = spec.generate(11);
        assert_eq!(t.files().len(), 1_500);
        assert_eq!(t.len(), 60_000);
    }

    #[test]
    fn mean_file_size_is_calibrated() {
        for spec in TraceSpec::paper_presets() {
            let small = spec.scaled(2_000, 50_000);
            let t = small.generate(7);
            let mean = t.files().avg_file_kb();
            assert!(
                (mean / spec.avg_file_kb - 1.0).abs() < 0.02,
                "{}: mean {mean} vs target {}",
                spec.name,
                spec.avg_file_kb
            );
        }
    }

    #[test]
    fn mean_request_size_is_calibrated() {
        for spec in TraceSpec::paper_presets() {
            let small = spec.scaled(2_000, 200_000);
            let t = small.generate(13);
            let mean = t.avg_request_kb();
            assert!(
                (mean / spec.avg_request_kb - 1.0).abs() < 0.15,
                "{}: request mean {mean} vs target {}",
                spec.name,
                spec.avg_request_kb
            );
        }
    }

    #[test]
    fn popularity_follows_zipf() {
        let spec = TraceSpec::clarknet().scaled(1_000, 300_000);
        let t = spec.generate(17);
        let est = crate::stats::estimate_alpha(&t);
        assert!(
            (est - spec.alpha).abs() < 0.15,
            "estimated alpha {est} vs {}",
            spec.alpha
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TraceSpec::nasa().scaled(500, 5_000);
        let a = spec.generate(3);
        let b = spec.generate(3);
        assert_eq!(a, b);
        let c = spec.generate(4);
        assert_ne!(a.requests(), c.requests());
    }

    #[test]
    fn file_ids_carry_no_popularity_order() {
        // The most popular file should not systematically be id 0.
        let spec = TraceSpec::calgary().scaled(300, 30_000);
        let hot_ids: Vec<u32> = (0..5)
            .map(|seed| {
                let t = spec.generate(seed);
                let counts = t.request_counts();
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i as u32)
                    .unwrap()
            })
            .collect();
        assert!(
            hot_ids.iter().any(|&id| id != hot_ids[0]),
            "hottest file always the same id: {hot_ids:?}"
        );
    }

    #[test]
    fn stats_pipeline_reports_presets() {
        let spec = TraceSpec::rutgers().scaled(1_000, 100_000);
        let t = spec.generate(23);
        let s = TraceStats::compute(&t);
        assert_eq!(s.num_files, 1_000);
        assert_eq!(s.num_requests, 100_000);
        assert!(s.working_set_kb > 0.0);
        assert!(s.distinct_files <= 1_000);
    }

    /// FNV-1a over a request-id sequence: a compact fingerprint of the
    /// exact bytes a stream yields.
    fn checksum(ids: impl Iterator<Item = u32>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in ids {
            h ^= u64::from(id);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    #[test]
    fn streaming_is_byte_identical_to_materialized_for_scaled_specs() {
        for spec in TraceSpec::paper_presets() {
            let small = spec.scaled(800, 20_000);
            let materialized = small.generate(42);
            let (files, stream) = small.stream(42);
            assert_eq!(
                files,
                *materialized.files(),
                "{}: file sets differ",
                spec.name
            );
            assert_eq!(stream.len(), materialized.len());
            let streamed: Vec<u32> = stream.collect();
            let reference: Vec<u32> = materialized.requests().iter().map(|f| f.raw()).collect();
            assert_eq!(streamed, reference, "{}: request bytes differ", spec.name);
        }
    }

    #[test]
    fn stream_rewind_replays_the_identical_sequence() {
        let spec = TraceSpec::nasa().scaled(400, 8_000);
        let (_files, mut stream) = spec.stream(9);
        let first: Vec<u32> = stream.by_ref().collect();
        assert_eq!(stream.remaining(), 0);
        stream.rewind();
        assert_eq!(stream.remaining(), stream.total());
        let second: Vec<u32> = stream.by_ref().collect();
        assert_eq!(first, second, "rewind must replay byte-identically");
        // Rewinding mid-lap restarts from the top too.
        stream.rewind();
        let head: Vec<u32> = stream.by_ref().take(100).collect();
        assert_eq!(head, first[..100]);
    }

    /// Full Table 2 pin: the streaming generator's exact output for all
    /// four presets at their *full* request counts, as FNV-1a checksums
    /// (computed once from the materialized path, which `generate`
    /// shares). Comparing fingerprints instead of materialized vectors
    /// keeps this fast and memory-flat; any drift in the RNG fork order,
    /// the Zipf sampler, or the recency window flips the checksum.
    #[test]
    fn full_table2_stream_checksums_are_pinned() {
        let pinned = [
            ("calgary", 0xf47f_9cec_4198_4cf1_u64),
            ("clarknet", 0xd69a_3fdd_1a61_bd00),
            ("nasa", 0x9781_2239_45e7_a403),
            ("rutgers", 0x796d_28d8_0590_05be),
        ];
        for (spec, (name, expect)) in TraceSpec::paper_presets().iter().zip(pinned) {
            assert_eq!(spec.name, name);
            let (_files, stream) = spec.stream(42);
            assert_eq!(
                checksum(stream),
                expect,
                "{name}: full-spec request sequence drifted"
            );
        }
    }

    #[test]
    fn probabilities_by_id_match_empirical_frequencies() {
        // temporal = 0 so the stream is a pure independent Zipf draw.
        let mut spec = TraceSpec::clarknet().scaled(50, 300_000);
        spec.temporal = 0.0;
        let (_files, stream) = spec.stream(17);
        let by_id = stream.probabilities_by_id();
        assert_eq!(by_id.len(), 50);
        assert!((by_id.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The hottest rank's id carries the largest probability.
        let hottest = stream.rank_to_id()[0];
        let max = by_id
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i as u32)
            .unwrap();
        assert_eq!(hottest, max);
        let mut counts = vec![0u64; 50];
        let total = stream.total();
        for id in stream {
            counts[cast::wide_usize(id)] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            let got = cast::exact_f64(c) / cast::len_f64(total);
            let want = by_id[id];
            assert!(
                (got - want).abs() < 0.005,
                "id {id}: empirical {got} vs table {want}"
            );
        }
    }

    #[test]
    fn clarknet_request_mean_can_exceed_file_mean() {
        // Clarknet's Table 2 row has avg request (11.9) > avg file (11.6):
        // the noisy sort must support (mild) descending correlation too.
        let spec = TraceSpec::clarknet().scaled(3_000, 200_000);
        let t = spec.generate(29);
        assert!(
            t.avg_request_kb() > t.files().avg_file_kb() * 0.95,
            "req mean {} should be near/above file mean {}",
            t.avg_request_kb(),
            t.files().avg_file_kb()
        );
    }
}
