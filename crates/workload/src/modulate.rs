//! Popularity modulation: flash crowds, working-set drift, and the
//! seeded state machine that applies a full [`WorkloadMod`] spec.

use crate::RateSchedule;
use l2s_util::{cast, invariant, DetRng};

/// Upper bound on the total probability mass flash crowds may redirect
/// at any instant. Overlapping crowds whose peak weights sum past this
/// are scaled down proportionally, so the base law always keeps some
/// share of the stream and per-file probabilities stay well defined.
pub const MAX_REDIRECT: f64 = 0.95;

/// A scheduled hot-object popularity spike.
///
/// From `start_s` the crowd's redirect weight ramps linearly to
/// `peak_weight` over `ramp_s`, holds for `hold_s`, and decays linearly
/// to zero over `decay_s`. While the weight is `q`, a fraction `q` of
/// all requests is redirected uniformly onto the crowd's hot set — the
/// `hot_files` consecutive ids starting at `first_id` (wrapping around
/// the population) — and the remaining `1 − q` follows the base law.
#[derive(Clone, Debug, PartialEq)]
pub struct FlashCrowd {
    /// When the spike begins, on the modulation clock (seconds).
    pub start_s: f64,
    /// Linear ramp-up length in seconds (0 = instantaneous onset).
    pub ramp_s: f64,
    /// Plateau length in seconds.
    pub hold_s: f64,
    /// Linear decay length in seconds (0 = instantaneous end).
    pub decay_s: f64,
    /// Redirect probability at the plateau, in `[0, 1)`.
    pub peak_weight: f64,
    /// Number of files in the hot set.
    pub hot_files: u32,
    /// First id of the hot set (the set wraps modulo the population).
    pub first_id: u32,
}

impl FlashCrowd {
    /// The crowd's redirect weight at clock time `t` (the trapezoid
    /// envelope described on the type).
    pub fn weight_at(&self, t: f64) -> f64 {
        let u = t - self.start_s;
        if u < 0.0 || self.peak_weight == 0.0 {
            return 0.0;
        }
        if u < self.ramp_s {
            return self.peak_weight * u / self.ramp_s;
        }
        let u = u - self.ramp_s;
        if u < self.hold_s {
            return self.peak_weight;
        }
        let u = u - self.hold_s;
        if u < self.decay_s {
            return self.peak_weight * (1.0 - u / self.decay_s);
        }
        0.0
    }

    /// Whether `id` belongs to the crowd's hot set in a population of
    /// `population` files.
    pub fn contains(&self, id: u32, population: u32) -> bool {
        let offset = (u64::from(id) + u64::from(population)
            - u64::from(self.first_id % population))
            % u64::from(population);
        offset < u64::from(self.hot_files)
    }

    fn validate(&self) -> Result<(), String> {
        let finite = self.start_s.is_finite()
            && self.ramp_s.is_finite()
            && self.hold_s.is_finite()
            && self.decay_s.is_finite();
        if !finite
            || self.start_s < 0.0
            || self.ramp_s < 0.0
            || self.hold_s < 0.0
            || self.decay_s < 0.0
        {
            return Err("flash crowd times must be finite and non-negative".into());
        }
        if self.ramp_s + self.hold_s + self.decay_s <= 0.0 {
            return Err("flash crowd must last longer than an instant".into());
        }
        if !(self.peak_weight.is_finite() && (0.0..1.0).contains(&self.peak_weight)) {
            return Err("flash crowd peak_weight must be in [0, 1)".into());
        }
        if self.hot_files == 0 {
            return Err("flash crowd needs at least one hot file".into());
        }
        Ok(())
    }
}

/// Working-set drift as a rank-rotation model: every `period_s` seconds
/// of the modulation clock, the popularity assignment rotates by `step`
/// ids — the file that held popularity rank *r* hands it to the file
/// `step` ids over, cyclically. The popularity *law* (and so every
/// aggregate of the stationary stream) is unchanged; only *which* files
/// are popular churns, at a rate of `step / period_s` ids per second.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftSpec {
    /// Seconds between rotations on the modulation clock.
    pub period_s: f64,
    /// Ids rotated per period (`0` disables churn — the identity).
    pub step: u32,
}

impl DriftSpec {
    fn validate(&self) -> Result<(), String> {
        if !(self.period_s.is_finite() && self.period_s > 0.0) {
            return Err("drift period_s must be positive and finite".into());
        }
        Ok(())
    }
}

/// The full modulation spec: each layer optional, the empty spec the
/// identity. `SimConfig` carries one of these; the default
/// [`WorkloadMod::none`] preserves stationary runs byte for byte.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct WorkloadMod {
    /// Arrival-intensity schedule. `None` leaves timing to the
    /// consumer (the simulator's own arrival mode) and gives the
    /// modulation clock a deterministic 1 request/s fluid time base.
    pub rate: Option<RateSchedule>,
    /// Scheduled flash crowds (may overlap; total redirected mass is
    /// capped at [`MAX_REDIRECT`]).
    pub flash: Vec<FlashCrowd>,
    /// Working-set drift.
    pub drift: Option<DriftSpec>,
}

impl WorkloadMod {
    /// The identity spec: no modulation at all.
    pub fn none() -> Self {
        WorkloadMod::default()
    }

    /// Whether this spec is the identity (no layers configured).
    pub fn is_none(&self) -> bool {
        self.rate.is_none() && self.flash.is_empty() && self.drift.is_none()
    }

    /// Validates every configured layer.
    pub fn validate(&self) -> Result<(), String> {
        for crowd in &self.flash {
            crowd.validate()?;
        }
        if let Some(drift) = &self.drift {
            drift.validate()?;
        }
        // RateSchedule construction already validates; re-validate the
        // segments to catch specs mutated through field access.
        if let Some(rate) = &self.rate {
            RateSchedule::new(rate.segments().to_vec())?;
        }
        Ok(())
    }

    /// The drift rotation offset at clock time `t` for a population of
    /// `population` files.
    pub fn rotation_at(&self, t: f64, population: u32) -> u32 {
        let Some(drift) = &self.drift else {
            return 0;
        };
        if drift.step == 0 || population == 0 {
            return 0;
        }
        let epochs = cast::len_u64(cast::floor_index(t / drift.period_s));
        let rotation = epochs
            .wrapping_mul(u64::from(drift.step))
            .rem_euclid(u64::from(population));
        cast::index_u32(cast::index_usize(rotation))
    }

    /// Writes each crowd's redirect weight at `t` into `out` (cleared
    /// first) and returns the total, with the proportional
    /// [`MAX_REDIRECT`] cap applied.
    pub fn flash_weights_at(&self, t: f64, out: &mut Vec<f64>) -> f64 {
        out.clear();
        let mut total = 0.0;
        for crowd in &self.flash {
            let w = crowd.weight_at(t);
            total += w;
            out.push(w);
        }
        if total > MAX_REDIRECT {
            let scale = MAX_REDIRECT / total;
            for w in out.iter_mut() {
                *w *= scale;
            }
            total = MAX_REDIRECT;
        }
        total
    }

    /// The probability that a request issued at clock time `t` is for
    /// file `id`, given the stationary per-id probabilities `base` of
    /// the underlying source. This is the analytic counterpart of
    /// [`Modulator::transform`]: the cache model integrates exactly
    /// this function.
    pub fn prob_at(&self, base: &[f64], t: f64, id: usize) -> f64 {
        let population = cast::index_u32(base.len());
        invariant!(population > 0, "prob_at needs a non-empty population");
        let id32 = cast::index_u32(id);
        invariant!(id32 < population, "prob_at id {id} out of population");
        // Drift relabels ids: the base id that maps *onto* `id` is the
        // inverse rotation.
        let rotation = self.rotation_at(t, population);
        let src = (u64::from(id32) + u64::from(population) - u64::from(rotation))
            .rem_euclid(u64::from(population));
        let base_p = base[cast::index_usize(src)];
        let mut weights = Vec::with_capacity(self.flash.len());
        let total = self.flash_weights_at(t, &mut weights);
        let mut p = (1.0 - total) * base_p;
        for (crowd, &w) in self.flash.iter().zip(&weights) {
            if w > 0.0 && crowd.contains(id32, population) {
                p += w / f64::from(crowd.hot_files.min(population));
            }
        }
        p
    }
}

/// The seeded state machine applying a [`WorkloadMod`] to a request
/// stream: it advances the modulation clock one request at a time and
/// maps each base id to its modulated id.
///
/// Determinism contract: all randomness comes from one forked
/// [`DetRng`] stream, and [`rewind`](Modulator::rewind) restores the
/// pristine state, so two laps replay byte-identically (the simulator's
/// warm-up pass depends on this). An identity spec consumes no
/// randomness in [`transform`](Modulator::transform), so the modulated
/// id sequence is bit-equal to the base sequence.
#[derive(Clone, Debug)]
pub struct Modulator {
    spec: WorkloadMod,
    population: u32,
    rng: DetRng,
    /// Pristine copy for `rewind`.
    rng0: DetRng,
    /// Running cumulative-rate target (unit exponential increments).
    cum: f64,
    /// Requests drawn this lap (drives the fluid clock when no
    /// schedule is configured).
    count: u64,
    /// Last emitted time (guards monotonicity against rounding in the
    /// schedule inversion).
    last_t: f64,
    weights: Vec<f64>,
}

impl Modulator {
    /// Builds the state machine for a population of `population` files.
    pub fn new(spec: WorkloadMod, population: u32, seed: u64) -> Self {
        invariant!(population > 0, "modulator needs a non-empty population");
        let rng = DetRng::new(seed ^ 0x0a0d_1af3_77c2_5e19_u64.rotate_left(17));
        Modulator {
            weights: Vec::with_capacity(spec.flash.len()),
            spec,
            population,
            rng0: rng.clone(),
            rng,
            cum: 0.0,
            count: 0,
            last_t: 0.0,
        }
    }

    /// The spec in effect.
    pub fn spec(&self) -> &WorkloadMod {
        &self.spec
    }

    /// The population size transforms map within.
    pub fn population(&self) -> u32 {
        self.population
    }

    /// Advances the modulation clock by one request and returns its
    /// arrival time in seconds.
    ///
    /// With a rate schedule: the running target grows by a unit
    /// exponential draw and is mapped through Λ⁻¹ — a non-homogeneous
    /// Poisson process with intensity λ(t). Without one: a
    /// deterministic fluid clock at 1 request/s (request *i* arrives at
    /// `i` seconds), which gives flash/drift layers a well-defined time
    /// base even under the simulator's closed loop, where wall timing
    /// is discarded anyway.
    pub fn next_time(&mut self) -> f64 {
        let t = match &self.spec.rate {
            Some(schedule) => {
                self.cum += self.rng.exponential(1.0);
                schedule.invert(self.cum).max(self.last_t)
            }
            None => cast::exact_f64(self.count),
        };
        self.count += 1;
        self.last_t = t;
        t
    }

    /// Maps a base-stream id to its modulated id at clock time `t`:
    /// drift rotates the id space, then any active flash crowd redirects
    /// with its current weight onto its hot set.
    pub fn transform(&mut self, t: f64, base_id: u32) -> u32 {
        invariant!(
            base_id < self.population,
            "base id {base_id} outside population {p}",
            p = self.population
        );
        let rotation = self.spec.rotation_at(t, self.population);
        let mut id = base_id;
        if rotation != 0 {
            id = cast::index_u32(cast::index_usize(
                (u64::from(id) + u64::from(rotation)).rem_euclid(u64::from(self.population)),
            ));
        }
        // Identity specs (and quiet instants) must consume no
        // randomness, so the output sequence stays bit-equal to the
        // base stream.
        if self.spec.flash.is_empty() {
            return id;
        }
        let total = self.spec.flash_weights_at(t, &mut self.weights);
        if total <= 0.0 {
            return id;
        }
        let mut u = self.rng.f64();
        if u >= total {
            return id;
        }
        for (crowd, &w) in self.spec.flash.iter().zip(&self.weights) {
            if u < w {
                let span = crowd.hot_files.min(self.population);
                let member = cast::index_u32(self.rng.index(cast::wide_usize(span)));
                return cast::index_u32(cast::index_usize(
                    (u64::from(crowd.first_id % self.population) + u64::from(member))
                        .rem_euclid(u64::from(self.population)),
                ));
            }
            u -= w;
        }
        id
    }

    /// Restores the pristine state: the next lap replays the identical
    /// times and transforms.
    pub fn rewind(&mut self) {
        self.rng = self.rng0.clone();
        self.cum = 0.0;
        self.count = 0;
        self.last_t = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crowd(start: f64, peak: f64) -> FlashCrowd {
        FlashCrowd {
            start_s: start,
            ramp_s: 10.0,
            hold_s: 20.0,
            decay_s: 10.0,
            peak_weight: peak,
            hot_files: 4,
            first_id: 100,
        }
    }

    #[test]
    fn flash_envelope_is_a_trapezoid() {
        let c = crowd(50.0, 0.4);
        assert_eq!(c.weight_at(0.0), 0.0);
        assert_eq!(c.weight_at(49.9), 0.0);
        assert!((c.weight_at(55.0) - 0.2).abs() < 1e-12, "mid-ramp");
        assert_eq!(c.weight_at(60.0), 0.4);
        assert_eq!(c.weight_at(75.0), 0.4);
        assert!((c.weight_at(85.0) - 0.2).abs() < 1e-12, "mid-decay");
        assert_eq!(c.weight_at(90.0), 0.0);
        assert_eq!(c.weight_at(1e9), 0.0);
    }

    #[test]
    fn hot_set_membership_wraps() {
        let c = FlashCrowd {
            first_id: 198,
            hot_files: 4,
            ..crowd(0.0, 0.3)
        };
        for id in [198, 199, 0, 1] {
            assert!(c.contains(id, 200), "{id} should be hot");
        }
        for id in [2, 100, 197] {
            assert!(!c.contains(id, 200), "{id} should be cold");
        }
    }

    #[test]
    fn overlapping_crowds_are_capped() {
        let spec = WorkloadMod {
            flash: vec![crowd(0.0, 0.7), crowd(0.0, 0.7)],
            ..WorkloadMod::none()
        };
        let mut w = Vec::new();
        let total = spec.flash_weights_at(15.0, &mut w);
        assert!((total - MAX_REDIRECT).abs() < 1e-12);
        assert!((w[0] - MAX_REDIRECT / 2.0).abs() < 1e-12);
    }

    #[test]
    fn drift_rotates_in_epochs() {
        let spec = WorkloadMod {
            drift: Some(DriftSpec {
                period_s: 10.0,
                step: 7,
            }),
            ..WorkloadMod::none()
        };
        assert_eq!(spec.rotation_at(0.0, 100), 0);
        assert_eq!(spec.rotation_at(9.999, 100), 0);
        assert_eq!(spec.rotation_at(10.0, 100), 7);
        assert_eq!(spec.rotation_at(35.0, 100), 21);
        // Rotation wraps the population.
        assert_eq!(spec.rotation_at(150.0, 100), 5);
    }

    #[test]
    fn identity_spec_transforms_are_the_identity_and_burn_no_rng() {
        let identity = WorkloadMod {
            rate: None,
            flash: vec![FlashCrowd {
                peak_weight: 0.0,
                ..crowd(0.0, 0.0)
            }],
            drift: Some(DriftSpec {
                period_s: 5.0,
                step: 0,
            }),
        };
        identity.validate().unwrap();
        let mut m = Modulator::new(identity, 500, 42);
        for i in 0..2_000_u32 {
            let t = m.next_time();
            let id = i % 500;
            assert_eq!(m.transform(t, id), id);
        }
    }

    #[test]
    fn fluid_clock_counts_requests() {
        let mut m = Modulator::new(WorkloadMod::none(), 10, 1);
        assert_eq!(m.next_time(), 0.0);
        assert_eq!(m.next_time(), 1.0);
        assert_eq!(m.next_time(), 2.0);
        m.rewind();
        assert_eq!(m.next_time(), 0.0);
    }

    #[test]
    fn scheduled_clock_is_monotone_and_replays_on_rewind() {
        let spec = WorkloadMod {
            rate: Some(RateSchedule::diurnal(300.0, 0.8, 120.0).unwrap()),
            ..WorkloadMod::none()
        };
        let mut m = Modulator::new(spec, 100, 9);
        let first: Vec<f64> = (0..5_000).map(|_| m.next_time()).collect();
        for pair in first.windows(2) {
            assert!(pair[1] >= pair[0], "arrival times must be monotone");
        }
        m.rewind();
        let second: Vec<f64> = (0..5_000).map(|_| m.next_time()).collect();
        assert_eq!(first, second, "rewind must replay the identical clock");
    }

    #[test]
    fn flash_crowd_concentrates_requests_on_the_hot_set() {
        let spec = WorkloadMod {
            flash: vec![FlashCrowd {
                start_s: 0.0,
                ramp_s: 0.0,
                hold_s: 1e6,
                decay_s: 0.0,
                peak_weight: 0.5,
                hot_files: 4,
                first_id: 10,
            }],
            ..WorkloadMod::none()
        };
        let mut m = Modulator::new(spec.clone(), 1_000, 7);
        let mut hot = 0u32;
        let n = 20_000u32;
        for i in 0..n {
            let t = m.next_time();
            // Base stream that never hits the hot set on its own.
            let id = m.transform(t, 500 + (i % 100));
            if spec.flash[0].contains(id, 1_000) {
                hot += 1;
            }
        }
        let frac = f64::from(hot) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn prob_at_matches_empirical_transform_frequencies() {
        // Uniform base law over 8 files; drift + flash active.
        let spec = WorkloadMod {
            rate: None,
            flash: vec![FlashCrowd {
                start_s: 0.0,
                ramp_s: 0.0,
                hold_s: 1e9,
                decay_s: 0.0,
                peak_weight: 0.3,
                hot_files: 2,
                first_id: 6,
            }],
            drift: Some(DriftSpec {
                period_s: 1e9, // one epoch: rotation fixed at 0
                step: 3,
            }),
        };
        let base = vec![0.125; 8];
        let mut m = Modulator::new(spec.clone(), 8, 3);
        let mut counts = [0u32; 8];
        let n = 200_000u32;
        for i in 0..n {
            let t = m.next_time();
            counts[cast::wide_usize(m.transform(t, i % 8))] += 1;
        }
        for id in 0..8usize {
            let want = spec.prob_at(&base, 0.0, id);
            let got = f64::from(counts[id]) / f64::from(n);
            assert!(
                (got - want).abs() < 0.01,
                "id {id}: empirical {got} vs analytic {want}"
            );
        }
    }

    #[test]
    fn spec_validation_rejects_nonsense() {
        let mut spec = WorkloadMod::none();
        assert!(spec.is_none());
        spec.validate().unwrap();
        spec.drift = Some(DriftSpec {
            period_s: 0.0,
            step: 1,
        });
        assert!(spec.validate().is_err());
        spec.drift = None;
        spec.flash = vec![FlashCrowd {
            peak_weight: 1.0,
            ..crowd(0.0, 0.0)
        }];
        assert!(spec.validate().is_err());
        spec.flash = vec![FlashCrowd {
            hot_files: 0,
            ..crowd(0.0, 0.2)
        }];
        assert!(spec.validate().is_err());
    }
}
