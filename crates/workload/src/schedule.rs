//! Deterministic arrival-intensity schedules and their time inversion.

use l2s_util::invariant;

const TAU: f64 = std::f64::consts::TAU;

/// One phase of a [`RateSchedule`]: a flat base rate, optionally
/// carrying a sinusoidal swing. The instantaneous intensity at local
/// time `u ∈ [0, duration_s)` is
///
/// ```text
/// λ(u) = base_rps · (1 + amplitude · sin(2π u / period_s))
/// ```
///
/// so `amplitude = 0` is a flat phase and `amplitude ∈ (0, 1)` keeps
/// the intensity strictly positive (the cumulative rate then has a
/// well-defined inverse everywhere).
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Phase length in seconds.
    pub duration_s: f64,
    /// Base intensity in requests per second.
    pub base_rps: f64,
    /// Relative sinusoidal swing, in `[0, 1)`.
    pub amplitude: f64,
    /// Sinusoid period in seconds (ignored when `amplitude` is 0).
    pub period_s: f64,
}

impl Segment {
    /// A flat phase at `rps` for `duration_s` seconds.
    pub fn flat(duration_s: f64, rps: f64) -> Self {
        Segment {
            duration_s,
            base_rps: rps,
            amplitude: 0.0,
            period_s: 1.0,
        }
    }

    /// Intensity at local time `u` (no range check; callers clamp).
    fn rate_at(&self, u: f64) -> f64 {
        if self.amplitude == 0.0 {
            return self.base_rps;
        }
        self.base_rps * (1.0 + self.amplitude * (TAU * u / self.period_s).sin())
    }

    /// Cumulative mass `∫₀ᵘ λ` in requests, closed form.
    fn mass_to(&self, u: f64) -> f64 {
        if self.amplitude == 0.0 {
            return self.base_rps * u;
        }
        let omega = TAU / self.period_s;
        self.base_rps * (u + self.amplitude / omega * (1.0 - (omega * u).cos()))
    }

    /// Local time `u` with `mass_to(u) = m`, for `m` in
    /// `[0, mass_to(duration_s)]`. Flat phases invert in closed form;
    /// sinusoidal phases bisect (the mass is strictly increasing
    /// because `amplitude < 1` keeps λ > 0).
    fn invert_mass(&self, m: f64) -> f64 {
        if self.amplitude == 0.0 {
            return (m / self.base_rps).clamp(0.0, self.duration_s);
        }
        let (mut lo, mut hi) = (0.0_f64, self.duration_s);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.mass_to(mid) < m {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err("segment duration_s must be positive and finite".into());
        }
        if !(self.base_rps.is_finite() && self.base_rps > 0.0) {
            return Err("segment base_rps must be positive and finite".into());
        }
        if !(self.amplitude.is_finite() && (0.0..1.0).contains(&self.amplitude)) {
            return Err("segment amplitude must be in [0, 1)".into());
        }
        if self.amplitude > 0.0 && !(self.period_s.is_finite() && self.period_s > 0.0) {
            return Err("segment period_s must be positive when amplitude > 0".into());
        }
        Ok(())
    }
}

/// A cyclic, deterministic intensity profile λ(t): a sequence of
/// [`Segment`]s that repeats forever (one cycle ≈ one "day").
///
/// The two derived quantities drive everything downstream:
///
/// * [`cumulative`](RateSchedule::cumulative) — Λ(t) = ∫₀ᵗ λ, the
///   expected request count by time `t`, with exact (closed-form)
///   phase boundaries: the value at a segment boundary is the exact
///   prefix sum of segment masses, so repeated cycles accumulate no
///   quadrature drift.
/// * [`invert`](RateSchedule::invert) — Λ⁻¹, mapping a cumulative
///   request count back to a time. Feeding it the running sum of unit
///   exponential draws yields arrival times of a non-homogeneous
///   Poisson process with intensity λ (the time-change construction).
#[derive(Clone, Debug, PartialEq)]
pub struct RateSchedule {
    segments: Vec<Segment>,
    /// `ends_s[i]` = end of segment `i` within the cycle, seconds.
    ends_s: Vec<f64>,
    /// `mass[i]` = Λ at `ends_s[i]` within the cycle, requests.
    mass: Vec<f64>,
    cycle_s: f64,
    cycle_mass: f64,
}

impl RateSchedule {
    /// Builds a schedule from its phases; rejects empty or degenerate
    /// ones.
    pub fn new(segments: Vec<Segment>) -> Result<Self, String> {
        if segments.is_empty() {
            return Err("rate schedule needs at least one segment".into());
        }
        let mut ends_s = Vec::with_capacity(segments.len());
        let mut mass = Vec::with_capacity(segments.len());
        let (mut t, mut m) = (0.0_f64, 0.0_f64);
        for seg in &segments {
            seg.validate()?;
            t += seg.duration_s;
            m += seg.mass_to(seg.duration_s);
            ends_s.push(t);
            mass.push(m);
        }
        if !(t.is_finite() && m.is_finite()) {
            return Err("rate schedule cycle overflows f64".into());
        }
        Ok(RateSchedule {
            segments,
            ends_s,
            mass,
            cycle_s: t,
            cycle_mass: m,
        })
    }

    /// A flat schedule at `rps` (cycle length 1 s; the cycle is
    /// irrelevant for a constant intensity).
    pub fn constant(rps: f64) -> Result<Self, String> {
        Self::new(vec![Segment::flat(1.0, rps)])
    }

    /// A pure sinusoidal day: λ(t) = `base_rps` (1 + `amplitude`
    /// sin(2πt/`period_s`)).
    pub fn diurnal(base_rps: f64, amplitude: f64, period_s: f64) -> Result<Self, String> {
        Self::new(vec![Segment {
            duration_s: period_s,
            base_rps,
            amplitude,
            period_s,
        }])
    }

    /// Flat phases from `(duration_s, rps)` pairs.
    pub fn piecewise(phases: &[(f64, f64)]) -> Result<Self, String> {
        Self::new(phases.iter().map(|&(d, r)| Segment::flat(d, r)).collect())
    }

    /// A stylized rush-hour/overnight day of length `day_s`: overnight
    /// at `low_rps`, shoulders at the midpoint rate, and a midday peak
    /// at `peak_rps`.
    pub fn rush_hour(day_s: f64, low_rps: f64, peak_rps: f64) -> Result<Self, String> {
        let mid = 0.5 * (low_rps + peak_rps);
        Self::piecewise(&[
            (0.35 * day_s, low_rps),
            (0.10 * day_s, mid),
            (0.20 * day_s, peak_rps),
            (0.10 * day_s, mid),
            (0.25 * day_s, low_rps),
        ])
    }

    /// The phases of one cycle.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Cycle length in seconds.
    pub fn cycle_s(&self) -> f64 {
        self.cycle_s
    }

    /// Expected requests per cycle (Λ over one cycle).
    pub fn cycle_mass(&self) -> f64 {
        self.cycle_mass
    }

    /// Cycle-average intensity in requests per second.
    pub fn mean_rps(&self) -> f64 {
        self.cycle_mass / self.cycle_s
    }

    /// Splits `t ≥ 0` into whole cycles and a position inside the
    /// cycle, returning `(cycles, segment index, local time in the
    /// segment, segment start, mass before the segment)`.
    fn locate(&self, t: f64) -> (f64, usize, f64, f64, f64) {
        invariant!(
            t.is_finite() && t >= 0.0,
            "schedule time must be finite and non-negative, got {t}"
        );
        let cycles = (t / self.cycle_s).floor();
        let local = (t - cycles * self.cycle_s).clamp(0.0, self.cycle_s);
        let i = self
            .ends_s
            .partition_point(|&e| e <= local)
            .min(self.segments.len() - 1);
        let start = if i == 0 { 0.0 } else { self.ends_s[i - 1] };
        let before = if i == 0 { 0.0 } else { self.mass[i - 1] };
        let u = (local - start).clamp(0.0, self.segments[i].duration_s);
        (cycles, i, u, start, before)
    }

    /// Instantaneous intensity λ(t) in requests per second.
    pub fn rate_at(&self, t: f64) -> f64 {
        let (_, i, u, _, _) = self.locate(t);
        self.segments[i].rate_at(u)
    }

    /// Cumulative rate Λ(t) = ∫₀ᵗ λ in requests. Strictly increasing
    /// (every segment keeps λ > 0), with exact values at phase
    /// boundaries.
    pub fn cumulative(&self, t: f64) -> f64 {
        let (cycles, i, u, _, before) = self.locate(t);
        cycles * self.cycle_mass + before + self.segments[i].mass_to(u)
    }

    /// Time inversion: the `t` with Λ(t) = `target` (requests), for
    /// `target ≥ 0`. Monotone in `target`.
    pub fn invert(&self, target: f64) -> f64 {
        invariant!(
            target.is_finite() && target >= 0.0,
            "schedule inversion target must be finite and non-negative, got {target}"
        );
        let cycles = (target / self.cycle_mass).floor();
        let rem = (target - cycles * self.cycle_mass).clamp(0.0, self.cycle_mass);
        let i = self
            .mass
            .partition_point(|&m| m <= rem)
            .min(self.segments.len() - 1);
        let start = if i == 0 { 0.0 } else { self.ends_s[i - 1] };
        let before = if i == 0 { 0.0 } else { self.mass[i - 1] };
        let u = self.segments[i].invert_mass((rem - before).max(0.0));
        cycles * self.cycle_s + start + u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_schedule_is_linear() {
        let s = RateSchedule::constant(250.0).unwrap();
        assert_eq!(s.rate_at(0.0), 250.0);
        assert_eq!(s.rate_at(17.3), 250.0);
        assert!((s.cumulative(4.0) - 1_000.0).abs() < 1e-9);
        assert!((s.invert(1_000.0) - 4.0).abs() < 1e-9);
        assert!((s.mean_rps() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_schedule_swings_about_the_base() {
        let s = RateSchedule::diurnal(100.0, 0.5, 400.0).unwrap();
        // Quarter cycle: sin = 1 -> peak; three quarters: sin = -1.
        assert!((s.rate_at(100.0) - 150.0).abs() < 1e-9);
        assert!((s.rate_at(300.0) - 50.0).abs() < 1e-9);
        // The sinusoid integrates to zero over a full cycle.
        assert!((s.cycle_mass() - 100.0 * 400.0).abs() < 1e-6);
        assert!((s.mean_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_boundaries_are_exact_prefix_sums() {
        let s = RateSchedule::piecewise(&[(10.0, 50.0), (5.0, 400.0), (20.0, 10.0)]).unwrap();
        assert_eq!(s.cumulative(10.0), 500.0);
        assert_eq!(s.cumulative(15.0), 2_500.0);
        assert_eq!(s.cumulative(35.0), 2_700.0);
        // And across whole cycles, with no accumulated drift.
        let thousand_cycles = 1_000.0 * s.cycle_s();
        assert_eq!(
            s.cumulative(thousand_cycles + 15.0),
            1_000.0 * s.cycle_mass() + 2_500.0
        );
    }

    #[test]
    fn inversion_round_trips_and_is_monotone() {
        let s = RateSchedule::rush_hour(1_000.0, 40.0, 900.0).unwrap();
        let mut prev = -1.0;
        for k in 0..200 {
            let target = 37.0 * f64::from(k);
            let t = s.invert(target);
            assert!(t >= prev, "inversion not monotone at {target}");
            prev = t;
            assert!(
                (s.cumulative(t) - target).abs() < 1e-6 * target.max(1.0),
                "round trip failed at {target}: t={t}"
            );
        }
    }

    #[test]
    fn sinusoidal_inversion_round_trips() {
        let s = RateSchedule::diurnal(200.0, 0.9, 600.0).unwrap();
        for k in 1..50 {
            let target = 977.0 * f64::from(k);
            let t = s.invert(target);
            assert!(
                (s.cumulative(t) - target).abs() < 1e-6 * target,
                "round trip failed at {target}"
            );
        }
    }

    #[test]
    fn degenerate_schedules_are_rejected() {
        assert!(RateSchedule::new(vec![]).is_err());
        assert!(RateSchedule::constant(0.0).is_err());
        assert!(RateSchedule::constant(f64::NAN).is_err());
        assert!(
            RateSchedule::diurnal(100.0, 1.0, 60.0).is_err(),
            "amplitude 1 stalls λ"
        );
        assert!(RateSchedule::diurnal(100.0, -0.1, 60.0).is_err());
        assert!(RateSchedule::piecewise(&[(0.0, 10.0)]).is_err());
        assert!(RateSchedule::diurnal(100.0, 0.5, 0.0).is_err());
    }
}
