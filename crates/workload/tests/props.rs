//! Property-based tests of the rate-schedule machinery: phase
//! boundaries stay exact across arbitrary cycle counts, the time
//! inversion is monotone and round-trips, and the arrival process the
//! modulator generates delivers the rate integral's request count.

use l2s_workload::{Modulator, RateSchedule, Segment, WorkloadMod};
use proptest::prelude::*;

/// Arbitrary valid phase: flat or sinusoidal, always with λ > 0.
fn arb_segment() -> impl Strategy<Value = Segment> {
    (0.5f64..200.0, 0.2f64..50.0, 0.0f64..0.9, 1.0f64..300.0).prop_map(
        |(duration_s, base_rps, amplitude, period_s)| Segment {
            duration_s,
            base_rps,
            amplitude,
            period_s,
        },
    )
}

/// Arbitrary valid schedule of 1..5 phases.
fn arb_schedule() -> impl Strategy<Value = RateSchedule> {
    prop::collection::vec(arb_segment(), 1..5)
        .prop_map(|segs| RateSchedule::new(segs).expect("generated segments are valid"))
}

proptest! {
    /// Λ at any phase boundary of any cycle is the exact prefix sum of
    /// closed-form segment masses — no quadrature drift accumulates,
    /// however many cycles out the boundary sits.
    #[test]
    fn phase_boundaries_are_exact_for_any_cycle_count(
        schedule in arb_schedule(),
        cycles in 0u32..2_000,
    ) {
        let k = f64::from(cycles);
        let mut boundary_mass = 0.0;
        let mut boundary_t = 0.0;
        for seg in schedule.segments() {
            boundary_t += seg.duration_s;
            // One segment's closed-form mass over its full duration.
            let seg_mass = schedule.cumulative(boundary_t) - boundary_mass;
            boundary_mass += seg_mass;
            let t = k * schedule.cycle_s() + boundary_t;
            let want = k * schedule.cycle_mass() + boundary_mass;
            let got = schedule.cumulative(t);
            // The only rounding allowed is the final f64 combination of
            // exact per-cycle and per-segment sums.
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "boundary at t={t}: Λ={got}, exact prefix sum {want}"
            );
        }
        // A full cycle's mass is exactly cycle_mass, every cycle.
        let got = schedule.cumulative((k + 1.0) * schedule.cycle_s());
        let want = (k + 1.0) * schedule.cycle_mass();
        prop_assert!((got - want).abs() <= 1e-9 * want.max(1.0));
    }

    /// Λ⁻¹ is monotone and round-trips through Λ across several cycles.
    #[test]
    fn inversion_is_monotone_and_round_trips(
        schedule in arb_schedule(),
        fractions in prop::collection::vec(0.0f64..8.0, 1..40),
    ) {
        let mut targets: Vec<f64> = fractions
            .iter()
            .map(|f| f * schedule.cycle_mass())
            .collect();
        targets.sort_by(f64::total_cmp);
        let mut prev_t = -1.0;
        for &target in &targets {
            let t = schedule.invert(target);
            prop_assert!(t >= prev_t, "inversion not monotone at Λ={target}");
            prev_t = t;
            let back = schedule.cumulative(t);
            prop_assert!(
                (back - target).abs() <= 1e-6 * target.max(1.0),
                "round trip Λ(Λ⁻¹({target})) = {back}"
            );
        }
    }

    /// The modulator's inverted arrival process is strictly usable as a
    /// simulation clock: non-decreasing times, and the request count
    /// delivered by any horizon matches the rate integral Λ(horizon)
    /// within Poisson noise (±6σ plus a small absolute slack).
    #[test]
    fn arrival_counts_match_the_rate_integral(
        schedule in arb_schedule(),
        seed in any::<u64>(),
        horizon_cycles in 1.0f64..6.0,
    ) {
        let horizon_s = horizon_cycles * schedule.cycle_s();
        let expected = schedule.cumulative(horizon_s);
        // Keep the draw count bounded so the test stays fast; the
        // tolerance below is scale-aware either way.
        prop_assume!(expected <= 200_000.0);
        let spec = WorkloadMod {
            rate: Some(schedule),
            ..WorkloadMod::none()
        };
        let mut modulator = Modulator::new(spec, 100, seed);
        let mut count: u64 = 0;
        let mut last = 0.0;
        loop {
            let t = modulator.next_time();
            prop_assert!(t >= last, "arrival clock went backwards: {t} < {last}");
            last = t;
            if t > horizon_s {
                break;
            }
            count += 1;
        }
        let sigma = expected.sqrt();
        let tolerance = 6.0 * sigma + 10.0;
        prop_assert!(
            (l2s_util::cast::exact_f64(count) - expected).abs() <= tolerance,
            "saw {count} arrivals by t={horizon_s}, expected Λ={expected} ± {tolerance}"
        );
    }
}
