//! A small discrete-event simulation kernel.
//!
//! The paper evaluates its servers with a detailed trace-driven simulator;
//! this crate is the from-scratch kernel that simulator is built on:
//!
//! * [`EventQueue`] — a future-event list with an embedded clock and
//!   deterministic FIFO tie-breaking for simultaneous events, so runs are
//!   exactly reproducible.
//! * [`FifoResource`] — a single-server FIFO station (CPU, disk, NI,
//!   router port) modeled by earliest-availability: scheduling a job
//!   returns its completion time under all queueing contention, and the
//!   station tracks busy time, served jobs, and instantaneous queue
//!   length for admission control.
//! * [`DelayStation`] — a contention-free fixed latency (the paper's
//!   switch fabric, whose internal contention is explicitly not modeled).
//!
//! The kernel is deliberately event-*data* agnostic: the simulator defines
//! its own event enum and drives a `while let Some((now, ev)) = q.pop()`
//! loop.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod queue;
mod resource;

pub use queue::{EventQueue, QueueStats};
pub use resource::{DelayStation, FifoResource};
