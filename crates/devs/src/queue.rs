//! The future-event list.

use l2s_util::{cast, invariant, SimDuration, SimTime};

/// One scheduled entry; ordered by `(time, seq)` so that events scheduled
/// for the same instant pop in scheduling order (deterministic FIFO
/// tie-breaking).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// The total order popped: earliest time first, scheduling order
    /// within a timestamp. Keys are unique (`seq` never repeats), so the
    /// pop sequence is the fully sorted order regardless of which lane an
    /// entry traversed — the simulator's determinism does not depend on
    /// queue internals.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// log2 of the calendar bucket width in nanoseconds: 2^18 ns = 262 µs.
/// A power of two turns time-to-bucket mapping into a shift. The width
/// sits between the switch/NI hop delays (1-7 µs) that dominate
/// scheduling traffic and the CPU-quantum/disk delays (1-28 ms) that
/// define the far horizon, so near-lane inserts search a short window
/// while far events spread over a hundred-odd buckets. Chosen
/// empirically: 2^16-2^18 measure within noise of each other on the
/// perf-baseline sweep; 2^15 and 2^20 are measurably slower.
const BUCKET_SHIFT: u32 = 18;

/// Number of calendar buckets (power of two). The calendar spans
/// `BUCKET_COUNT << BUCKET_SHIFT` ns = 134 ms, beyond the longest delay
/// the cluster model schedules (a ~28 ms disk read), so in steady state
/// an insert never wraps onto a bucket still holding older epochs — and
/// if one does (e.g. open-loop arrivals at very low rates), the
/// per-entry epoch check keeps the pop order exact anyway.
const BUCKET_COUNT: usize = 512;

/// Epoch of a timestamp: its global bucket number (not wrapped).
#[inline]
fn epoch(t: SimTime) -> u64 {
    t.as_nanos() >> BUCKET_SHIFT
}

/// A future-event list with an embedded simulation clock.
///
/// The clock advances only through [`EventQueue::pop`]; scheduling an
/// event in the past is a causality violation, checked by `invariant!`
/// (debug builds always; release builds under `strict-invariants`).
///
/// # Structure
///
/// A two-stage calendar queue split by a moving time `horizon`:
///
/// * `near` — events inside the bucket epoch currently being serviced
///   (`time < horizon`), kept fully sorted in *descending* `(time, seq)`
///   order so the earliest event pops from the vector's end in O(1).
///   Inserts binary-search their slot; the window is one bucket wide
///   (262 µs), so the lane stays short and inserts move little memory.
/// * `buckets` — a calendar of [`BUCKET_COUNT`] unsorted vectors for
///   events at or beyond the horizon. Insertion is O(1): push onto
///   bucket `epoch(time) % BUCKET_COUNT`. When the near lane drains, the
///   sweep advances to the next epoch holding events, extracts exactly
///   that epoch's entries (wrapped future-epoch entries stay put), sorts
///   them, and installs them as the new near lane.
///
/// Both stages order by the same total key `(time, seq)`, and `seq`
/// never repeats, so the pop sequence is the fully sorted event order.
pub struct EventQueue<E> {
    /// Sorted descending by `(time, seq)`; global minimum at the end.
    near: Vec<Entry<E>>,
    /// Calendar buckets, unsorted; entry `e` lives at
    /// `epoch(e.time) & (BUCKET_COUNT - 1)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Total entries across all buckets.
    bucketed: usize,
    /// Epoch the near lane is serving; `horizon` is its exclusive end.
    cur_epoch: u64,
    /// Lane split: `near` holds times strictly below this.
    horizon: SimTime,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue preallocated for `capacity` pending near events, so
    /// steady-state scheduling never reallocates the hot lane.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            near: Vec::with_capacity(capacity),
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            bucketed: 0,
            cur_epoch: 0,
            horizon: SimTime::from_nanos(1 << BUCKET_SHIFT),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock (checked in debug builds
    /// and, under `strict-invariants`, in release builds too).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        invariant!(
            at >= self.now,
            "causality violation: scheduling at {at} before now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry {
            time: at,
            seq,
            event,
        };
        if at < self.horizon {
            let key = entry.key();
            let pos = self.near.partition_point(|e| e.key() > key);
            self.near.insert(pos, entry);
        } else {
            let b = cast::index_usize(epoch(at) & (cast::len_u64(BUCKET_COUNT) - 1));
            self.buckets[b].push(entry);
            self.bucketed += 1;
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Advances the horizon to the next epoch holding events and installs
    /// that epoch's entries — sorted, each exactly once — as the near
    /// lane. Caller guarantees the near lane is empty and at least one
    /// bucketed entry exists.
    fn sweep(&mut self) {
        debug_assert!(self.near.is_empty() && self.bucketed > 0);
        let mask = cast::len_u64(BUCKET_COUNT) - 1;
        let mut scanned = 0usize;
        loop {
            self.cur_epoch += 1;
            let b = cast::index_usize(self.cur_epoch & mask);
            let bucket = &mut self.buckets[b];
            if !bucket.is_empty() {
                // Extract current-epoch entries; wrapped future-epoch
                // entries stay for a later lap. The common case — every
                // entry current — moves the whole vector, keeping its
                // capacity warm in `near` and handing the (empty) old
                // near buffer to the bucket.
                if bucket.iter().all(|e| epoch(e.time) == self.cur_epoch) {
                    self.near = std::mem::replace(bucket, std::mem::take(&mut self.near));
                } else {
                    let mut i = 0;
                    while i < bucket.len() {
                        if epoch(bucket[i].time) == self.cur_epoch {
                            self.near.push(bucket.swap_remove(i));
                        } else {
                            i += 1;
                        }
                    }
                }
                if !self.near.is_empty() {
                    self.bucketed -= self.near.len();
                    self.near.sort_unstable_by(|a, b| b.key().cmp(&a.key()));
                    self.horizon = SimTime::from_nanos((self.cur_epoch + 1) << BUCKET_SHIFT);
                    return;
                }
            }
            scanned += 1;
            if scanned >= BUCKET_COUNT {
                // A full lap found nothing current: every pending entry
                // wrapped at least once (delays beyond the calendar
                // span). Jump straight to just before the earliest
                // pending epoch instead of lapping epoch by epoch. The
                // minimum always exists (`bucketed > 0` on entry).
                let min_epoch = self.buckets.iter().flatten().map(|e| epoch(e.time)).min();
                if let Some(min_epoch) = min_epoch {
                    self.cur_epoch = min_epoch - 1;
                }
                scanned = 0;
            }
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near.is_empty() {
            if self.bucketed == 0 {
                return None;
            }
            self.sweep();
        }
        let entry = self.near.pop()?;
        invariant!(
            entry.time >= self.now,
            "clock monotonicity violated: popped {at} behind now {now}",
            at = entry.time,
            now = self.now
        );
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Every near event precedes every bucketed event.
        if let Some(e) = self.near.last() {
            return Some(e.time);
        }
        self.buckets.iter().flatten().map(|e| e.time).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near.len() + self.bucketed
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near.is_empty() && self.bucketed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(t(42), ());
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "first");
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), "second");
        assert_eq!(q.pop(), Some((t(105), "second")));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(50), ());
        q.pop();
        q.schedule(t(49), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(50), 1);
        q.pop();
        q.schedule(t(50), 2);
        assert_eq!(q.pop(), Some((t(50), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), ());
        q.schedule(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 0u32);
        q.schedule(t(30), 1);
        let (now, _) = q.pop().unwrap();
        assert_eq!(now, t(10));
        q.schedule(t(20), 2);
        q.schedule(t(25), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    /// Delays far beyond the calendar span (multiple wraps) still pop in
    /// order — the epoch check defers wrapped entries to their own lap.
    #[test]
    fn wrapped_far_future_events_stay_ordered() {
        let span = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.schedule(t(3 * span + 7), "far");
        q.schedule(t(span + 9), "mid");
        q.schedule(t(40), "soon");
        assert_eq!(q.pop(), Some((t(40), "soon")));
        assert_eq!(q.pop(), Some((t(span + 9), "mid")));
        assert_eq!(q.pop(), Some((t(3 * span + 7), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = l2s_util::DetRng::new(3);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(t(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
        }
    }

    /// The queue's pop sequence matches a naive fully-sorted reference
    /// under a workload mixing hop-scale and disk-scale delays with
    /// interleaved pops, including delays that wrap the calendar.
    #[test]
    fn matches_sorted_reference_under_mixed_delays() {
        let delays: [u64; 8] = [
            1_000,       // switch hop
            7_143,       // NI
            158_700,     // parse
            1_000_000,   // CPU quantum
            29_000_000,  // disk read
            100,         // immediate
            70_000_000,  // beyond the calendar span
            250_000_000, // multiple wraps
        ];
        let mut rng = l2s_util::DetRng::new(17);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time, id)
        let mut id = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            for _ in 0..1 + rng.below(3) {
                let at = now + delays[rng.below(delays.len() as u64) as usize];
                q.schedule(t(at), id);
                reference.push((at, id));
                id += 1;
            }
            // The reference pops its (time, insertion-order) minimum.
            reference.sort_by_key(|&(at, id)| (at, id));
            let (rt, rid) = reference.remove(0);
            let (qt, qid) = q.pop().unwrap();
            assert_eq!((qt, qid), (t(rt), rid));
            now = rt;
        }
        reference.sort_by_key(|&(at, id)| (at, id));
        for (rt, rid) in reference {
            assert_eq!(q.pop(), Some((t(rt), rid)));
        }
        assert_eq!(q.pop(), None);
    }
}
