//! The future-event list.

use l2s_util::{cast, invariant, SimDuration, SimTime};

/// One scheduled entry; ordered by `(time, seq)` so that events scheduled
/// for the same instant pop in scheduling order (deterministic FIFO
/// tie-breaking). Keys are unique (`seq` never repeats), so the pop
/// sequence is the fully sorted order regardless of which lane an entry
/// traversed — the simulator's determinism does not depend on queue
/// internals.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// log2 of the calendar bucket width in nanoseconds: 2^18 ns = 262 µs.
/// A power of two turns time-to-bucket mapping into a shift. The width
/// sets the near/far split — events within the current epoch go to the
/// sorted near ring (sequential memmove insert), later ones to a random
/// calendar bucket (a dependent pointer chase at insert and again at
/// sweep) — so wider buckets trade random-access far traffic for
/// sequential ring shifting. Measured across widths at 16 and 256
/// nodes: 33 µs (right when the near lane was a binary heap, whose
/// sift depth the width must bound) loses 20-30 % under the ring, and
/// 1 ms overshoots — per-epoch event cardinality grows linearly with
/// cluster size, and at 256 nodes millisecond epochs mean ~40
/// shifted entries (≈1 KB memmove) per event. 262 µs keeps the
/// CPU-scale delays (hops, NI, parse) in the ring, leaves the
/// quantum- and disk-scale ones in the calendar, and shifts ~9
/// entries per event at 256 nodes.
const BUCKET_SHIFT: u32 = 18;

/// Number of calendar buckets (power of two, a multiple of 4096 so both
/// bitmap levels stay full words). The calendar spans
/// `BUCKET_COUNT << BUCKET_SHIFT` ns ≈ 1.07 s — two orders past the
/// longest single delay (a ~28 ms disk read), so only deep per-node
/// disk backlogs under large admission windows ever wrap. Wrapped
/// entries land on buckets still holding earlier laps and take the
/// sweep's entry-by-entry epoch-filter path. Raising the bucket count
/// instead of the width was measured and *lost* — 8x the count means
/// 768 KB of bucket headers (vs 96 KB, L2-resident), and the extra
/// misses on the headers cost more than the wrap filtering saved at
/// every cluster size.
const BUCKET_COUNT: usize = 4096;

/// Words in the occupancy bitmap: one bit per bucket.
const OCC_WORDS: usize = BUCKET_COUNT / 64;

/// Words in the bitmap's summary level: one bit per occupancy word.
const SUM_WORDS: usize = OCC_WORDS / 64;

/// Epoch of a timestamp: its global bucket number (not wrapped).
#[inline]
fn epoch(t: SimTime) -> u64 {
    t.as_nanos() >> BUCKET_SHIFT
}

/// A future-event list with an embedded simulation clock.
///
/// The clock advances only through [`EventQueue::pop`]; scheduling an
/// event in the past is a causality violation, checked by `invariant!`
/// (debug builds always; release builds under `strict-invariants`).
///
/// # Structure
///
/// A two-stage calendar queue split by a moving time `horizon`:
///
/// * the *near lane* — events inside the bucket epoch currently being
///   serviced (`time < horizon`), kept sorted *descending* on
///   `(time, seq)` so the minimum is at the tail: pop is O(1). The lane
///   is struct-of-arrays: `near_key` holds the 16-byte keys and
///   `near_ev` the payloads, index-matched. Inserts binary-search the
///   dense key lane and memmove both lanes. This replaced a binary
///   min-heap after operation counters showed the heap's sift work is
///   the queue's dominant scale-variant cost: sifts grow with per-epoch
///   event cardinality k (event density rises linearly with cluster
///   size — ~2.3 dependent-compare swaps per event at 256 nodes versus
///   0.15 at 16), while the ring's memmoves are sequential and k is
///   bounded by one epoch's worth of events (tens, not the admission
///   window), so an insert shifts a couple hundred bytes. Cheap deep
///   lanes also let the buckets be wide ([`BUCKET_SHIFT`]), halving
///   the random calendar traffic the heap's depth bound forced.
/// * `buckets` — a calendar of [`BUCKET_COUNT`] unsorted vectors for
///   events at or beyond the horizon. Insertion is O(1): push onto
///   bucket `epoch(time) % BUCKET_COUNT`. When the near lane drains, the
///   sweep advances to the next epoch holding events, extracts exactly
///   that epoch's entries (wrapped future-epoch entries stay put) into a
///   reusable scratch buffer and sorts them into the near lanes. A
///   two-level occupancy bitmap (one bit per bucket plus a summary word
///   per 64 buckets) lets the sweep jump straight to the next non-empty
///   bucket, so runs whose inter-event gaps span many bucket widths
///   (disk-bound, small clusters) never walk empty epochs one by one.
///
/// Both stages order by the same total key `(time, seq)`, and `seq`
/// never repeats, so the pop sequence is the fully sorted event order —
/// lane internals cannot reorder equal keys because keys are unique.
pub struct EventQueue<E> {
    /// Near-lane keys `(time, seq)`, sorted descending; the minimum —
    /// the next pop — is at the tail.
    near_key: Vec<(SimTime, u64)>,
    /// Payload lane, index-matched to `near_key`.
    near_ev: Vec<E>,
    /// Calendar buckets, unsorted; entry `e` lives at
    /// `epoch(e.time) & (BUCKET_COUNT - 1)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap: bit `b` of word `b / 64` is set iff
    /// `buckets[b]` is non-empty.
    occupied: Box<[u64; OCC_WORDS]>,
    /// Summary level: bit `w` of word `w / 64` is set iff
    /// `occupied[w] != 0`.
    summary: [u64; SUM_WORDS],
    /// Reusable sweep staging buffer (capacity stays warm across sweeps).
    scratch: Vec<Entry<E>>,
    /// Total entries across all buckets.
    bucketed: usize,
    /// Epoch the near lane is serving; `horizon` is its exclusive end.
    cur_epoch: u64,
    /// Lane split: the near lane holds times strictly below this.
    horizon: SimTime,
    seq: u64,
    now: SimTime,
    stats: QueueStats,
}

/// Operation counters, maintained unconditionally (each costs one
/// add to state the operation already touches). They answer *where the
/// queue's work goes* independently of wall-clock noise: `ins_shifted`
/// totals the ring entries memmoved by near-lane inserts (the effective
/// insert depth), `sweep_sorted` the entries sweeps sorted, `deferred`
/// the wrapped entries re-filtered by sweeps, `scanned` the buckets
/// visited (including bitmap-skipped ones).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled into the near-lane ring.
    pub near_pushes: u64,
    /// Events scheduled into calendar buckets.
    pub far_pushes: u64,
    /// Ring entries shifted (memmoved) by near-lane inserts.
    pub ins_shifted: u64,
    /// Entries sorted into the near lane by sweeps.
    pub sweep_sorted: u64,
    /// Sweeps that refilled the near lane.
    pub sweeps: u64,
    /// Buckets advanced over by sweeps (occupied or bitmap-skipped).
    pub scanned: u64,
    /// Entries inspected by sweeps but left for a later lap (wrapped
    /// beyond the calendar span).
    pub deferred: u64,
    /// Full-lap fallbacks (every pending entry wrapped at least once).
    pub full_laps: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue preallocated for `capacity` pending near events, so
    /// steady-state scheduling never reallocates the hot lane.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            near_key: Vec::with_capacity(capacity),
            near_ev: Vec::with_capacity(capacity),
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            occupied: Box::new([0; OCC_WORDS]),
            summary: [0; SUM_WORDS],
            scratch: Vec::new(),
            stats: QueueStats::default(),
            bucketed: 0,
            cur_epoch: 0,
            horizon: SimTime::from_nanos(1 << BUCKET_SHIFT),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock (checked in debug builds
    /// and, under `strict-invariants`, in release builds too).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        invariant!(
            at >= self.now,
            "causality violation: scheduling at {at} before now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        if at < self.horizon {
            self.stats.near_pushes += 1;
            let key = (at, seq);
            // Descending lane: first index whose key is not greater than
            // ours. Keys are unique, so no tie handling is needed.
            let pos = self.near_key.partition_point(|&k| k > key);
            self.stats.ins_shifted += cast::len_u64(self.near_key.len() - pos);
            self.near_key.insert(pos, key);
            self.near_ev.insert(pos, event);
        } else {
            self.stats.far_pushes += 1;
            let b = cast::index_usize(epoch(at) & (cast::len_u64(BUCKET_COUNT) - 1));
            self.buckets[b].push(Entry {
                time: at,
                seq,
                event,
            });
            self.occupied[b >> 6] |= 1 << (b & 63);
            self.summary[b >> 12] |= 1 << ((b >> 6) & 63);
            self.bucketed += 1;
        }
    }

    /// Clears bucket `b`'s occupancy bit (call when the bucket empties).
    #[inline]
    fn mark_empty(&mut self, b: usize) {
        let w = b >> 6;
        self.occupied[w] &= !(1 << (b & 63));
        if self.occupied[w] == 0 {
            self.summary[w >> 6] &= !(1 << (w & 63));
        }
    }

    /// First non-empty occupancy word at or after word `from`, in
    /// circular order, via the summary level; `None` when the whole
    /// bitmap is clear.
    #[inline]
    fn next_word(&self, from: usize) -> Option<usize> {
        let s0 = from >> 6;
        let masked = self.summary[s0] & (!0u64 << (from & 63));
        if masked != 0 {
            return Some((s0 << 6) | cast::index_usize(u64::from(masked.trailing_zeros())));
        }
        // At most SUM_WORDS further words to inspect; the final step
        // re-reads `s0` unmasked, which is the circular wrap.
        for step in 1..=SUM_WORDS {
            let s = (s0 + step) & (SUM_WORDS - 1);
            if self.summary[s] != 0 {
                let w = cast::index_usize(u64::from(self.summary[s].trailing_zeros()));
                return Some((s << 6) | w);
            }
        }
        None
    }

    /// First occupied bucket index at or after `start` in circular
    /// order. Caller guarantees at least one bucket is occupied
    /// (`bucketed > 0`).
    #[inline]
    fn next_occupied(&self, start: usize) -> usize {
        let w0 = start >> 6;
        let in_word = self.occupied[w0] & (!0u64 << (start & 63));
        if in_word != 0 {
            return (w0 << 6) | cast::index_usize(u64::from(in_word.trailing_zeros()));
        }
        // Later words via the summary level, wrapping past the end.
        let from = (w0 + 1) & (OCC_WORDS - 1);
        match self.next_word(from) {
            Some(w) => (w << 6) | cast::index_usize(u64::from(self.occupied[w].trailing_zeros())),
            None => invariant::invariant_failed(format_args!(
                "occupancy bitmap empty with bucketed entries pending"
            )),
        }
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Advances the horizon to the next epoch holding events and installs
    /// that epoch's entries — sorted, each exactly once — as the near
    /// lane. Caller guarantees the near lane is empty and at least one
    /// bucketed entry exists.
    fn sweep(&mut self) {
        debug_assert!(self.near_key.is_empty() && self.bucketed > 0);
        let mask = BUCKET_COUNT - 1;
        let mut scanned = 0usize;
        loop {
            // Jump to the next occupied bucket instead of probing empty
            // epochs one by one — sparse runs (inter-event gaps of many
            // bucket widths) advance in O(1) word scans per sweep.
            let from = cast::index_usize((self.cur_epoch + 1) & cast::len_u64(mask));
            let b = self.next_occupied(from);
            let skipped = (b.wrapping_sub(from)) & mask;
            self.cur_epoch += 1 + cast::len_u64(skipped);
            scanned += 1 + skipped;
            self.stats.scanned += cast::len_u64(1 + skipped);
            let bucket = &mut self.buckets[b];
            // Extract current-epoch entries into the scratch buffer;
            // wrapped future-epoch entries stay for a later lap. The
            // common case — every entry current — swaps the whole
            // vector, keeping both buffers' capacity warm.
            if bucket.iter().all(|e| epoch(e.time) == self.cur_epoch) {
                std::mem::swap(bucket, &mut self.scratch);
                self.mark_empty(b);
            } else {
                let mut i = 0;
                while i < bucket.len() {
                    if epoch(bucket[i].time) == self.cur_epoch {
                        self.scratch.push(bucket.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                self.stats.deferred += cast::len_u64(bucket.len());
            }
            if !self.scratch.is_empty() {
                self.stats.sweeps += 1;
                self.stats.sweep_sorted += cast::len_u64(self.scratch.len());
                self.bucketed -= self.scratch.len();
                // Descending, so the epoch's earliest entry lands at the
                // tail; the lane was empty on entry.
                self.scratch
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                for e in self.scratch.drain(..) {
                    self.near_key.push((e.time, e.seq));
                    self.near_ev.push(e.event);
                }
                self.horizon = SimTime::from_nanos((self.cur_epoch + 1) << BUCKET_SHIFT);
                return;
            }
            if scanned >= BUCKET_COUNT {
                // A full lap found nothing current: every pending entry
                // wrapped at least once (delays beyond the calendar
                // span). Jump straight to just before the earliest
                // pending epoch instead of lapping epoch by epoch. The
                // minimum always exists (`bucketed > 0` on entry).
                self.stats.full_laps += 1;
                let min_epoch = self.buckets.iter().flatten().map(|e| epoch(e.time)).min();
                if let Some(min_epoch) = min_epoch {
                    self.cur_epoch = min_epoch - 1;
                }
                scanned = 0;
            }
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near_key.is_empty() {
            if self.bucketed == 0 {
                return None;
            }
            self.sweep();
        }
        let (time, _) = self.near_key.pop()?;
        let event = self.near_ev.pop()?;
        invariant!(
            time >= self.now,
            "clock monotonicity violated: popped {at} behind now {now}",
            at = time,
            now = self.now
        );
        self.now = time;
        Some((time, event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // Every near event precedes every bucketed event, and the lane
        // is descending: its minimum is at the tail.
        if let Some(&(time, _)) = self.near_key.last() {
            return Some(time);
        }
        self.buckets.iter().flatten().map(|e| e.time).min()
    }

    /// Operation counters since construction.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_key.len() + self.bucketed
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.near_key.is_empty() && self.bucketed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(t(42), ());
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "first");
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), "second");
        assert_eq!(q.pop(), Some((t(105), "second")));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(50), ());
        q.pop();
        q.schedule(t(49), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(50), 1);
        q.pop();
        q.schedule(t(50), 2);
        assert_eq!(q.pop(), Some((t(50), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), ());
        q.schedule(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 0u32);
        q.schedule(t(30), 1);
        let (now, _) = q.pop().unwrap();
        assert_eq!(now, t(10));
        q.schedule(t(20), 2);
        q.schedule(t(25), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    /// The two near lanes stay index-matched through mixed inserts,
    /// sweeps, and pops: every popped payload equals the id encoded in
    /// its own timestamp.
    #[test]
    fn near_lanes_stay_in_lockstep() {
        let mut rng = l2s_util::DetRng::new(9);
        let mut q = EventQueue::new();
        let mut now = 0u64;
        let mut scheduled = 0u64;
        let mut popped = 0usize;
        for round in 0..2_000u64 {
            // Encode the timestamp in the payload so any lane skew is
            // immediately visible.
            let at = now + 1 + rng.below(500_000);
            q.schedule(t(at), (at, round));
            scheduled += 1;
            if rng.below(3) > 0 {
                let (time, (at, _)) = q.pop().unwrap();
                assert_eq!(time, t(at), "payload skewed from its key");
                now = time.as_nanos();
                popped += 1;
            }
        }
        while let Some((time, (at, _))) = q.pop() {
            assert_eq!(time, t(at));
            popped += 1;
        }
        assert_eq!(popped as u64, scheduled);
    }

    /// Delays far beyond the calendar span (multiple wraps) still pop in
    /// order — the epoch check defers wrapped entries to their own lap.
    #[test]
    fn wrapped_far_future_events_stay_ordered() {
        let span = (BUCKET_COUNT as u64) << BUCKET_SHIFT;
        let mut q = EventQueue::new();
        q.schedule(t(3 * span + 7), "far");
        q.schedule(t(span + 9), "mid");
        q.schedule(t(40), "soon");
        assert_eq!(q.pop(), Some((t(40), "soon")));
        assert_eq!(q.pop(), Some((t(span + 9), "mid")));
        assert_eq!(q.pop(), Some((t(3 * span + 7), "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = l2s_util::DetRng::new(3);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(t(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
        }
    }

    /// The queue's pop sequence matches a naive fully-sorted reference
    /// under a workload mixing hop-scale and disk-scale delays with
    /// interleaved pops, including delays that wrap the calendar.
    #[test]
    fn matches_sorted_reference_under_mixed_delays() {
        let delays: [u64; 8] = [
            1_000,         // switch hop
            7_143,         // NI
            158_700,       // parse
            1_000_000,     // CPU quantum
            29_000_000,    // disk read
            100,           // immediate
            70_000_000,    // deep disk backlog
            3_000_000_000, // beyond the calendar span (multiple wraps)
        ];
        let mut rng = l2s_util::DetRng::new(17);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time, id)
        let mut id = 0u64;
        let mut now = 0u64;
        for _ in 0..5_000 {
            for _ in 0..1 + rng.below(3) {
                let at = now + delays[rng.below(delays.len() as u64) as usize];
                q.schedule(t(at), id);
                reference.push((at, id));
                id += 1;
            }
            // The reference pops its (time, insertion-order) minimum.
            reference.sort_by_key(|&(at, id)| (at, id));
            let (rt, rid) = reference.remove(0);
            let (qt, qid) = q.pop().unwrap();
            assert_eq!((qt, qid), (t(rt), rid));
            now = rt;
        }
        reference.sort_by_key(|&(at, id)| (at, id));
        for (rt, rid) in reference {
            assert_eq!(q.pop(), Some((t(rt), rid)));
        }
        assert_eq!(q.pop(), None);
    }
}
