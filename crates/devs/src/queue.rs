//! The future-event list.

use l2s_util::{invariant, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry; ordered by `(time, seq)` so that events scheduled
/// for the same instant pop in scheduling order (deterministic FIFO
/// tie-breaking).
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry
        // (smallest time, then smallest seq) on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list with an embedded simulation clock.
///
/// The clock advances only through [`EventQueue::pop`]; scheduling an
/// event in the past is a causality violation, checked by `invariant!`
/// (debug builds always; release builds under `strict-invariants`).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is earlier than the current clock (checked in debug builds
    /// and, under `strict-invariants`, in release builds too).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        invariant!(
            at >= self.now,
            "causality violation: scheduling at {at} before now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` at `now + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        invariant!(
            entry.time >= self.now,
            "clock monotonicity violated: popped {at} behind now {now}",
            at = entry.time,
            now = self.now
        );
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(t(42), ());
        q.pop();
        assert_eq!(q.now(), t(42));
    }

    #[test]
    fn schedule_after_uses_clock() {
        let mut q = EventQueue::new();
        q.schedule(t(100), "first");
        q.pop();
        q.schedule_after(SimDuration::from_nanos(5), "second");
        assert_eq!(q.pop(), Some((t(105), "second")));
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    #[cfg(any(debug_assertions, feature = "strict-invariants"))]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(50), ());
        q.pop();
        q.schedule(t(49), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(50), 1);
        q.pop();
        q.schedule(t(50), 2);
        assert_eq!(q.pop(), Some((t(50), 2)));
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), ());
        q.schedule(t(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 0u32);
        q.schedule(t(30), 1);
        let (now, _) = q.pop().unwrap();
        assert_eq!(now, t(10));
        q.schedule(t(20), 2);
        q.schedule(t(25), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn large_volume_stays_sorted() {
        let mut rng = l2s_util::DetRng::new(3);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(t(rng.below(1_000_000)), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
        }
    }
}
