//! Contended and contention-free service stations.

use l2s_util::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A single-server FIFO station (CPU, disk, NI, router port).
///
/// Instead of materializing queueing events, the station keeps the time
/// its server becomes free: a job submitted at `now` with service time
/// `s` completes at `max(now, free_at) + s`. This is exact for FIFO
/// single-server queues and keeps the event count per request constant.
///
/// Capacity-bounded stations additionally track the completion times of
/// in-flight jobs so the simulator can ask for the instantaneous backlog
/// (`queue_len`) — the paper admits new client requests only while "the
/// router and network interface buffers would accept them". Unbounded
/// stations skip that bookkeeping entirely: admission control never
/// consults them, and dropping the per-job ring-buffer traffic keeps the
/// hot path allocation- and branch-light.
#[derive(Clone, Debug)]
pub struct FifoResource {
    free_at: SimTime,
    busy: SimDuration,
    served: u64,
    completions: VecDeque<SimTime>,
    capacity: Option<usize>,
}

impl Default for FifoResource {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoResource {
    /// An unbounded station.
    pub fn new() -> Self {
        FifoResource {
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            served: 0,
            completions: VecDeque::new(),
            capacity: None,
        }
    }

    /// A station whose buffer holds at most `capacity` jobs (including
    /// the one in service). [`FifoResource::try_schedule`] refuses jobs
    /// beyond that.
    pub fn with_capacity(capacity: usize) -> Self {
        l2s_util::invariant!(capacity >= 1, "capacity must hold at least one job");
        FifoResource {
            capacity: Some(capacity),
            ..Self::new()
        }
    }

    fn drain(&mut self, now: SimTime) {
        while let Some(&front) = self.completions.front() {
            if front <= now {
                self.completions.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of jobs queued or in service at `now`. Only
    /// capacity-bounded stations track backlog; an unbounded station
    /// always reports 0.
    ///
    /// This is a pure query: already-finished entries are counted out by
    /// binary search (`completions` is sorted — FIFO completion times are
    /// monotone) rather than drained, so `&self` suffices. The mutating
    /// paths (`schedule`/`try_schedule`) still drain to bound memory.
    pub fn queue_len(&self, now: SimTime) -> usize {
        let finished = self.completions.partition_point(|&done| done <= now);
        self.completions.len() - finished
    }

    /// Whether a job submitted at `now` would be admitted. Pure query.
    pub fn would_accept(&self, now: SimTime) -> bool {
        match self.capacity {
            None => true,
            // `completions` only shrinks over time, so an under-cap raw
            // count is conclusive without the binary search.
            Some(cap) => self.completions.len() < cap || self.queue_len(now) < cap,
        }
    }

    /// Earliest time a job could be admitted, as a lower bound computed
    /// from the current backlog: the completion instant of the in-flight
    /// job whose departure first brings the backlog below capacity.
    /// `None` when a job would be admitted at `now` already (or the
    /// station is unbounded).
    ///
    /// The bound stays valid under everything that can happen before
    /// that instant: later submissions append *later* completion times
    /// (they can only move true admission later), and the passage of
    /// time merely drains already-finished entries without touching the
    /// gating element. Callers may therefore cache the value and skip
    /// admission checks until the clock reaches it.
    pub fn next_admission(&self, now: SimTime) -> Option<SimTime> {
        let cap = self.capacity?;
        let len = self.completions.len();
        if len < cap || self.queue_len(now) < cap {
            return None;
        }
        self.completions.get(len - cap).copied()
    }

    /// Submits a job at `now` needing `service` time; returns its
    /// completion time, or `None` if the buffer is full.
    pub fn try_schedule(&mut self, now: SimTime, service: SimDuration) -> Option<SimTime> {
        if !self.would_accept(now) {
            return None;
        }
        self.drain(now);
        Some(self.schedule_unchecked(now, service))
    }

    /// Submits a job at `now` needing `service` time; returns its
    /// completion time. Ignores any capacity bound — use for stations
    /// where upstream admission already limits backlog.
    pub fn schedule(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        if self.capacity.is_some() {
            self.drain(now);
        }
        self.schedule_unchecked(now, service)
    }

    fn schedule_unchecked(&mut self, now: SimTime, service: SimDuration) -> SimTime {
        let start = self.free_at.max(now);
        let done = start + service;
        self.free_at = done;
        self.busy += service;
        self.served += 1;
        if self.capacity.is_some() {
            self.completions.push_back(done);
        }
        done
    }

    /// When the server next becomes idle (may be in the past).
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total service time performed since the last stats reset.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Jobs completed or accepted since the last stats reset.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of the window `[window_start, window_end]` this server
    /// spent busy (0 when the window is empty). Assumes stats were reset
    /// at `window_start`.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            0.0
        } else {
            (self.busy.as_secs_f64() / window.as_secs_f64()).min(1.0)
        }
    }

    /// Zeroes busy-time and served-job accounting (used after cache
    /// warm-up) without touching in-flight work.
    pub fn reset_stats(&mut self) {
        self.busy = SimDuration::ZERO;
        self.served = 0;
    }

    /// Discards all in-flight and queued work as of `now` (a node crash):
    /// the backlog is dropped, the server becomes free immediately, and
    /// the unperformed portion of already-accepted service time
    /// (`free_at - now`) is subtracted from the busy accounting so
    /// utilization reflects work actually carried out. Completed history
    /// (`served`, performed busy time) is kept.
    ///
    /// The rescinded span can exceed accrued busy time when work was
    /// scheduled to *start* in the future (the replay front-end books
    /// a whole station pipeline at admission); busy clamps at zero
    /// rather than underflowing.
    pub fn reset_in_flight(&mut self, now: SimTime) {
        self.completions.clear();
        if self.free_at > now {
            let rescinded = self.free_at - now;
            self.busy = if self.busy > rescinded {
                self.busy - rescinded
            } else {
                SimDuration::ZERO
            };
            self.free_at = now;
        }
    }
}

/// A contention-free fixed delay (the paper's switch fabric: 1 µs, with
/// internal contention explicitly not modeled).
#[derive(Clone, Copy, Debug)]
pub struct DelayStation {
    delay: SimDuration,
}

impl DelayStation {
    /// A station adding `delay` to every traversal.
    pub fn new(delay: SimDuration) -> Self {
        DelayStation { delay }
    }

    /// Completion time of a traversal starting at `now`.
    #[inline]
    pub fn traverse(&self, now: SimTime) -> SimTime {
        now + self.delay
    }

    /// The configured delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }
    fn d(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = FifoResource::new();
        assert_eq!(r.schedule(t(100), d(50)), t(150));
        assert_eq!(r.free_at(), t(150));
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut r = FifoResource::new();
        assert_eq!(r.schedule(t(0), d(100)), t(100));
        // Arrives at 10 while busy: waits until 100.
        assert_eq!(r.schedule(t(10), d(20)), t(120));
        // Arrives at 15: waits behind both.
        assert_eq!(r.schedule(t(15), d(5)), t(125));
    }

    #[test]
    fn server_goes_idle_between_jobs() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(10));
        // Arrives long after the first completes.
        assert_eq!(r.schedule(t(1000), d(10)), t(1010));
    }

    #[test]
    fn queue_len_tracks_backlog() {
        let mut r = FifoResource::with_capacity(8);
        r.schedule(t(0), d(100)); // done at 100
        r.schedule(t(0), d(100)); // done at 200
        r.schedule(t(0), d(100)); // done at 300
        assert_eq!(r.queue_len(t(50)), 3);
        assert_eq!(r.queue_len(t(100)), 2);
        assert_eq!(r.queue_len(t(250)), 1);
        assert_eq!(r.queue_len(t(300)), 0);
    }

    #[test]
    fn unbounded_station_skips_backlog_tracking() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(100));
        r.schedule(t(0), d(100));
        assert_eq!(r.queue_len(t(50)), 0, "no tracking without a capacity");
        assert!(r.would_accept(t(50)));
        assert_eq!(r.served(), 2, "stats still accumulate");
    }

    #[test]
    fn capacity_limits_admission() {
        let mut r = FifoResource::with_capacity(2);
        assert!(r.try_schedule(t(0), d(100)).is_some());
        assert!(r.try_schedule(t(0), d(100)).is_some());
        assert!(r.try_schedule(t(0), d(100)).is_none(), "third job refused");
        // After the first job finishes there is room again.
        assert!(r.would_accept(t(100)));
        assert_eq!(r.try_schedule(t(100), d(100)), Some(t(300)));
    }

    #[test]
    fn busy_time_and_served_accumulate() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(30));
        r.schedule(t(100), d(70));
        assert_eq!(r.busy_time(), d(100));
        assert_eq!(r.served(), 2);
        r.reset_stats();
        assert_eq!(r.busy_time(), SimDuration::ZERO);
        assert_eq!(r.served(), 0);
        // In-flight state survives the reset.
        assert_eq!(r.free_at(), t(170));
    }

    #[test]
    fn utilization_is_busy_over_window() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(250));
        assert!((r.utilization(d(1000)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(500));
        r.schedule(t(0), d(600));
        assert_eq!(r.utilization(d(1000)), 1.0);
    }

    #[test]
    fn reset_in_flight_drops_backlog_and_unperformed_work() {
        let mut r = FifoResource::with_capacity(8);
        r.schedule(t(0), d(100)); // done at 100
        r.schedule(t(0), d(100)); // done at 200
        r.schedule(t(0), d(100)); // done at 300
                                  // Crash at 150: the first job finished, the second is half done,
                                  // the third never ran.
        r.reset_in_flight(t(150));
        assert_eq!(r.free_at(), t(150));
        assert_eq!(r.queue_len(t(150)), 0);
        assert!(r.would_accept(t(150)));
        // 300 ns were accepted; 150 ns of server time were unperformed.
        assert_eq!(r.busy_time(), d(150));
        assert_eq!(r.served(), 3, "accepted-job count is history, kept");
        // The station schedules normally afterwards.
        assert_eq!(r.schedule(t(150), d(10)), t(160));
    }

    #[test]
    fn reset_in_flight_on_idle_station_is_inert() {
        let mut r = FifoResource::new();
        r.schedule(t(0), d(40));
        r.reset_in_flight(t(1000)); // long after completion
        assert_eq!(r.busy_time(), d(40));
        assert_eq!(r.free_at(), t(40), "past free_at untouched");
    }

    #[test]
    #[should_panic(expected = "capacity must hold at least one job")]
    fn zero_capacity_rejected() {
        let _ = FifoResource::with_capacity(0);
    }

    #[test]
    fn delay_station_is_contention_free() {
        let s = DelayStation::new(d(1000));
        // Two simultaneous traversals both finish after exactly the delay.
        assert_eq!(s.traverse(t(5)), t(1005));
        assert_eq!(s.traverse(t(5)), t(1005));
        assert_eq!(s.delay(), d(1000));
    }

    #[test]
    fn completion_times_never_precede_submission() {
        let mut rng = l2s_util::DetRng::new(17);
        let mut r = FifoResource::new();
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        for _ in 0..10_000 {
            now += d(rng.below(200));
            let service = d(rng.below(300) + 1);
            let done = r.schedule(now, service);
            assert!(done >= now + service, "done too early");
            assert!(done >= last_done, "FIFO order violated");
            last_done = done;
        }
    }
}
