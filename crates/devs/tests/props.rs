//! Property-based tests for the discrete-event kernel.

use l2s_devs::{DelayStation, EventQueue, FifoResource};
use l2s_util::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Pops are globally time-ordered and FIFO within a timestamp.
    #[test]
    fn queue_pops_sorted_stable(times in prop::collection::vec(0u64..500, 1..300)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), seq);
        }
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// A FIFO station is work-conserving: total busy time equals the sum
    /// of service times, and completions are ordered.
    #[test]
    fn resource_work_conservation(jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..200)) {
        let mut r = FifoResource::new();
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|&(a, _)| a);
        let mut total = 0u64;
        let mut last_done = SimTime::ZERO;
        for &(arrive, service) in &arrivals {
            let done = r.schedule(SimTime::from_nanos(arrive), SimDuration::from_nanos(service));
            total += service;
            prop_assert!(done >= SimTime::from_nanos(arrive + service));
            prop_assert!(done >= last_done);
            last_done = done;
        }
        prop_assert_eq!(r.busy_time().as_nanos(), total);
        prop_assert_eq!(r.served(), arrivals.len() as u64);
        // Makespan is at least the total work.
        prop_assert!(last_done.as_nanos() >= total);
    }

    /// A bounded station never holds more than its capacity.
    #[test]
    fn resource_capacity_never_exceeded(
        cap in 1usize..10,
        jobs in prop::collection::vec((0u64..1_000, 1u64..200), 1..100),
    ) {
        let mut r = FifoResource::with_capacity(cap);
        let mut arrivals = jobs;
        arrivals.sort_by_key(|&(a, _)| a);
        for &(arrive, service) in &arrivals {
            let now = SimTime::from_nanos(arrive);
            let len_before = r.queue_len(now);
            prop_assert!(len_before <= cap);
            let accepted = r
                .try_schedule(now, SimDuration::from_nanos(service))
                .is_some();
            prop_assert_eq!(accepted, len_before < cap);
        }
    }

    /// Delay stations are pure: output = input + delay, independent of
    /// traffic.
    #[test]
    fn delay_station_is_pure(delay in 0u64..10_000, times in prop::collection::vec(0u64..1u64 << 40, 1..50)) {
        let s = DelayStation::new(SimDuration::from_nanos(delay));
        for &t in &times {
            prop_assert_eq!(
                s.traverse(SimTime::from_nanos(t)).as_nanos(),
                t + delay
            );
        }
    }

    /// Random interleavings of schedule/pop never break the clock's
    /// monotonicity.
    #[test]
    fn queue_clock_monotone_under_interleaving(seed in any::<u64>(), ops in 1usize..400) {
        let mut rng = DetRng::new(seed);
        let mut q = EventQueue::new();
        let mut last_now = SimTime::ZERO;
        for i in 0..ops {
            if rng.chance(0.6) || q.is_empty() {
                let at = q.now() + SimDuration::from_nanos(rng.below(1_000));
                q.schedule(at, i);
            } else {
                let (t, _) = q.pop().unwrap();
                prop_assert!(t >= last_now);
                last_now = t;
                prop_assert_eq!(q.now(), t);
            }
        }
    }
}
