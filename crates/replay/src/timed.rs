//! The timed replay engine: policies plus node hardware, no event queue.
//!
//! One [`ReplayEngine`] holds a [`PolicyDriver`] and the per-node
//! [`NodeHardware`] stations. The caller owns the loop (and the clock):
//! it offers requests at their arrival times and the engine models each
//! one through a FIFO station pipeline — NI-in, CPU parse (plus the
//! forwarding charge when the policy handed the request off), disk on a
//! cache miss, CPU reply, NI-out — using the Table 1 [`NodeCosts`].
//! Completions are settled lazily from a min-heap whenever time
//! advances, feeding the policy's `complete` hook exactly as the DES
//! does.
//!
//! This is deliberately a *lighter* contention model than the DES (no
//! router, no switch hops, no per-message NI traffic, no closed-loop
//! admission): the replay front-end's timed mode answers "how would
//! this policy behave on my live log right now", while exact engine
//! semantics remain the job of the infinite-speed DES-backed path.

use l2s::{Placement, PolicyDriver, PolicyKind};
use l2s_cluster::{build_nodes, CachePolicy, NodeCosts, NodeHardware};
use l2s_sim::{NodeReport, SimConfig, SimReport};
use l2s_util::{cast, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for a timed replay run.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Policy to drive.
    pub policy: PolicyKind,
    /// Cluster size.
    pub nodes: usize,
    /// Per-node cache capacity in KB.
    pub cache_kb: f64,
    /// Inbound-NI admission buffer (requests), as in the DES.
    pub ni_buffer: usize,
    /// Table 1 service times.
    pub costs: NodeCosts,
    /// Snapshot period in virtual seconds (`<= 0` disables snapshots).
    pub snapshot_every_s: f64,
    /// Stop after this many injected requests (`None` = whole stream).
    pub max_requests: Option<usize>,
    /// Record individual response times (needed for the p99 column;
    /// costs O(completed) memory, like the engine's `response_samples`).
    pub response_samples: bool,
}

impl ReplayConfig {
    /// Paper-default hardware (Section 5.1 cache size, NI buffer, and
    /// Table 1 costs) for `nodes` nodes under `policy`.
    pub fn new(policy: PolicyKind, nodes: usize) -> Self {
        Self::from_sim(&SimConfig::paper_default(nodes), policy)
    }

    /// Borrows the hardware parameters of an existing [`SimConfig`], so
    /// replay and simulation runs agree on the cluster being modeled.
    pub fn from_sim(sim: &SimConfig, policy: PolicyKind) -> Self {
        ReplayConfig {
            policy,
            nodes: sim.nodes,
            cache_kb: sim.cache_kb,
            ni_buffer: sim.ni_buffer,
            costs: sim.costs,
            snapshot_every_s: 10.0,
            max_requests: sim.max_requests,
            response_samples: true,
        }
    }
}

/// One in-flight request: completion time, admission order (the
/// determinism tie-break for simultaneous completions), service node,
/// and file.
type InFlight = Reverse<(SimTime, u64, usize, u32)>;

/// Policies plus node hardware behind an offer/complete interface. See
/// the module docs for the service model.
#[derive(Debug)]
pub struct ReplayEngine {
    cfg: ReplayConfig,
    driver: PolicyDriver,
    nodes: Vec<NodeHardware>,
    inflight: BinaryHeap<InFlight>,
    peak_inflight: usize,
    seq: u64,
    injected: u64,
    failed: u64,
    forwarded: u64,
    control_msgs: u64,
    response_sum_s: f64,
    samples_s: Vec<f64>,
    now: SimTime,
}

impl ReplayEngine {
    /// A fresh engine: cold caches, idle stations, policy at its
    /// initial state.
    pub fn new(cfg: ReplayConfig) -> Self {
        let driver = PolicyDriver::new(cfg.policy, cfg.nodes);
        let nodes = build_nodes(cfg.nodes, CachePolicy::Lru, cfg.cache_kb, cfg.ni_buffer);
        ReplayEngine {
            cfg,
            driver,
            nodes,
            inflight: BinaryHeap::new(),
            peak_inflight: 0,
            seq: 0,
            injected: 0,
            failed: 0,
            forwarded: 0,
            control_msgs: 0,
            response_sum_s: 0.0,
            samples_s: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Requests injected so far (accepted + rejected).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Forwards the file population (count and sizes) to the policy.
    pub fn hint_sizes(&mut self, sizes_kb: &[f64]) {
        self.driver.hint_files(sizes_kb.len());
        self.driver.hint_file_sizes(sizes_kb);
    }

    /// Marks `node` down (crash semantics: cache wiped, stations
    /// cleared, in-flight work on it lost) at `now`.
    pub fn node_down(&mut self, now: SimTime, node: usize) {
        self.advance(now);
        self.driver.node_down(now.as_nanos(), node);
        self.nodes[node].crash(now);
        // Work queued on the dead node never completes; requests lost
        // this way count as failed, mirroring the engine's abort path
        // (the policy's completion hook settles its load accounting).
        let drained: Vec<_> = self.inflight.drain().collect();
        for Reverse(e) in drained {
            if e.2 == node {
                self.failed += 1;
                self.driver.complete(now.as_nanos(), e.2, e.3);
            } else {
                self.inflight.push(Reverse(e));
            }
        }
        self.collect_messages();
    }

    /// Marks `node` back up at `now`.
    pub fn node_up(&mut self, now: SimTime, node: usize) {
        self.advance(now);
        self.driver.node_up(now.as_nanos(), node);
    }

    /// Offers one request for `file` (`size_kb` KB) arriving at `at`.
    /// Returns the serving node, or `None` when every candidate was
    /// down and the request failed.
    pub fn offer(&mut self, at: SimTime, file: u32, size_kb: f64) -> Option<usize> {
        self.advance(at);
        self.injected += 1;
        let (node, forwarded) = match self.driver.place(at.as_nanos(), file) {
            Placement::Serve {
                node, forwarded, ..
            } => (node, forwarded),
            Placement::Rejected => {
                self.failed += 1;
                return None;
            }
        };
        self.collect_messages();
        if forwarded {
            self.forwarded += 1;
        }
        let done = self.schedule_service(at, node, file, size_kb, forwarded);
        let response_s = done.saturating_since(at).as_secs_f64();
        self.response_sum_s += response_s;
        if self.cfg.response_samples {
            self.samples_s.push(response_s);
        }
        self.inflight.push(Reverse((done, self.seq, node, file)));
        self.seq += 1;
        self.peak_inflight = self.peak_inflight.max(self.inflight.len());
        Some(node)
    }

    /// Settles every completion due at or before `upto` (public so the
    /// caller can flush before taking a snapshot).
    pub fn drain_due(&mut self, upto: SimTime) {
        self.advance(upto);
    }

    /// Settles all remaining in-flight work and returns the final
    /// report.
    pub fn finish(&mut self) -> SimReport {
        self.advance(SimTime::MAX);
        self.report()
    }

    fn advance(&mut self, upto: SimTime) {
        let mut settled = false;
        while let Some(&Reverse((done, _, node, file))) = self.inflight.peek() {
            if done > upto {
                break;
            }
            self.inflight.pop();
            self.driver.complete(done.as_nanos(), node, file);
            self.nodes[node].completed += 1;
            settled = true;
            if done > self.now {
                self.now = done;
            }
        }
        if settled {
            self.collect_messages();
        }
        if upto > self.now && upto < SimTime::MAX {
            self.now = upto;
        }
    }

    /// Drains the policy's control-message buffer into the counter —
    /// the single accounting point, so place/complete return values and
    /// the drain can never double-count (and the buffer stays bounded
    /// over an endless tail).
    fn collect_messages(&mut self) {
        self.control_msgs += cast::len_u64(self.driver.drain_messages().len());
    }

    /// Runs one request through the serving node's station pipeline and
    /// returns its completion time.
    fn schedule_service(
        &mut self,
        at: SimTime,
        node: usize,
        file: u32,
        size_kb: f64,
        forwarded: bool,
    ) -> SimTime {
        let costs = self.cfg.costs;
        let hw = &mut self.nodes[node];
        let t_in = hw.ni_in.schedule(at, costs.ni_in());
        let mut cpu_front = costs.parse();
        if forwarded {
            cpu_front += costs.forward();
        }
        let t_parsed = hw.cpu.schedule(t_in, cpu_front);
        let hit = hw.access_file(file, size_kb);
        let t_data = if hit {
            t_parsed
        } else {
            hw.disk.schedule(t_parsed, costs.disk_read(size_kb))
        };
        let t_reply = hw.cpu.schedule(t_data, costs.mem_reply(size_kb));
        hw.ni_out.schedule(t_reply, costs.ni_out(size_kb))
    }

    /// The metrics so far, in the engine's [`SimReport`] shape. Fields
    /// the timed model does not measure (router utilization, lifecycle
    /// segments, fault phases, event-queue statistics) report zero.
    pub fn report(&self) -> SimReport {
        let elapsed = SimDuration::from_nanos(self.now.as_nanos());
        let elapsed_s = elapsed.as_secs_f64();
        let completed: u64 = self.nodes.iter().map(|n| n.completed).sum();
        let serving = self.driver.serving_nodes();
        let (mut hits, mut misses) = (0u64, 0u64);
        let per_node: Vec<NodeReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let s = n.cache.stats();
                hits += s.hits;
                misses += s.misses;
                NodeReport {
                    node: i,
                    cpu_utilization: n.cpu.utilization(elapsed),
                    disk_utilization: n.disk.utilization(elapsed),
                    completed: n.completed,
                    cache_hits: s.hits,
                    cache_misses: s.misses,
                }
            })
            .collect();
        let frac = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                cast::exact_f64(num) / cast::exact_f64(den)
            }
        };
        let p99 = percentile_99(&self.samples_s);
        SimReport {
            policy: self.cfg.policy.name(),
            nodes: self.cfg.nodes,
            completed,
            elapsed,
            throughput_rps: if elapsed_s > 0.0 {
                cast::exact_f64(completed) / elapsed_s
            } else {
                0.0
            },
            miss_rate: frac(misses, hits + misses),
            forwarded_fraction: frac(self.forwarded, self.injected - self.failed),
            cpu_idle: if serving.is_empty() {
                0.0
            } else {
                serving
                    .iter()
                    .map(|&n| self.nodes[n].cpu_idle_fraction(elapsed))
                    .sum::<f64>()
                    / cast::len_f64(serving.len())
            },
            router_utilization: 0.0,
            control_msgs_per_request: frac(self.control_msgs, completed),
            mean_response_s: if self.injected > self.failed {
                self.response_sum_s / cast::exact_f64(self.injected - self.failed)
            } else {
                0.0
            },
            p99_response_s: p99,
            segment_means_s: [0.0; 3],
            failed: self.failed,
            retried: 0,
            unavailability: 0.0,
            phase_rps: [0.0; 3],
            events_handled: self.injected + completed,
            peak_fel_depth: self.peak_inflight,
            fel_ops: Default::default(),
            per_node,
        }
    }
}

/// Nearest-rank 99th percentile; `None` when no samples were recorded.
fn percentile_99(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank =
        cast::floor_index((cast::len_f64(sorted.len()) * 0.99).ceil()).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_completes_and_reports() {
        let mut e = ReplayEngine::new(ReplayConfig::new(PolicyKind::Traditional, 2));
        e.hint_sizes(&[4.0, 8.0]);
        for i in 0..10u32 {
            let at = SimTime::from_secs_f64(f64::from(i) * 0.01);
            assert!(e.offer(at, i % 2, 4.0).is_some());
        }
        let r = e.finish();
        assert_eq!(r.completed, 10);
        assert_eq!(r.failed, 0);
        assert!(r.mean_response_s > 0.0);
        assert!(r.p99_response_s.is_some());
        assert_eq!(r.per_node.len(), 2);
        assert_eq!(
            r.per_node.iter().map(|n| n.completed).sum::<u64>(),
            r.completed
        );
    }

    #[test]
    fn all_down_cluster_fails_requests_instead_of_serving() {
        let mut e = ReplayEngine::new(ReplayConfig::new(PolicyKind::Jsq, 3));
        e.hint_sizes(&[4.0]);
        let t = SimTime::from_secs_f64(1.0);
        for n in 0..3 {
            e.node_down(t, n);
        }
        for i in 0..5u32 {
            let at = SimTime::from_secs_f64(2.0 + f64::from(i));
            assert_eq!(e.offer(at, 0, 4.0), None, "all-down cluster must fail");
        }
        let r = e.finish();
        assert_eq!(r.failed, 5);
        assert_eq!(r.completed, 0);
        assert_eq!(r.per_node[0].completed, 0, "nothing routed to node 0");
    }

    #[test]
    fn node_down_fails_in_flight_work_on_that_node() {
        let mut e = ReplayEngine::new(ReplayConfig::new(PolicyKind::RoundRobin, 2));
        e.hint_sizes(&[50.0]);
        // Two arrivals land on nodes 0 and 1 (round-robin), then node 0
        // dies before either completes.
        let a = e.offer(SimTime::from_secs_f64(0.001), 0, 50.0).unwrap();
        let b = e.offer(SimTime::from_secs_f64(0.002), 0, 50.0).unwrap();
        assert_ne!(a, b);
        e.node_down(SimTime::from_secs_f64(0.003), 0);
        let r = e.finish();
        assert_eq!(r.failed, 1, "node 0's request died with it");
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn percentile_requires_samples() {
        assert_eq!(percentile_99(&[]), None);
        assert_eq!(percentile_99(&[0.5]), Some(0.5));
        let many: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_99(&many), Some(99.0));
    }
}
