//! Live CLF replay front-end.
//!
//! The DES engine answers "what would this cluster have done over the
//! whole trace"; this crate answers the *online* question — tail a
//! Common Log Format access log (a file being written, or stdin) and
//! drive any [`PolicyKind`] request-distribution policy against it as
//! the requests arrive, in real time, scaled time (`--speed`), or as
//! fast as the log can be read.
//!
//! Two execution modes share one configuration:
//!
//! * **Timed replay** ([`replay_stream`] / [`replay_trace_timed`]): a
//!   single-threaded loop over the [`PolicyDriver`] API. Virtual time
//!   comes from the log's own timestamps (or a Poisson arrival process
//!   for synthetic traces); an injectable [`Clock`] paces the loop —
//!   [`WallClock`] sleeps until each arrival is due, [`VirtualClock`]
//!   jumps. Per-node service is modeled with the same
//!   [`NodeHardware`] stations and [`NodeCosts`] Table 1 service times
//!   the DES uses, in a simplified FIFO pipeline (NI-in, CPU parse
//!   [+forward], disk on a cache miss, CPU reply, NI-out). Memory is
//!   bounded by distinct files + in-flight requests, never log length.
//! * **Infinite-speed replay** ([`replay_trace_fast`]): drives the DES
//!   engine itself with a placement observer attached, so the placement
//!   sequence is *identical by construction* to `simulate` on the same
//!   trace, config, and seed — the parity contract the X10 experiment
//!   pins in CI.
//!
//! Both modes report through the engine's [`SimReport`], emitted as
//! periodic snapshots and a final CSV written with the same
//! [`CsvTable`](l2s_util::csv::CsvTable) machinery as the experiment
//! writers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod timed;

pub use timed::{ReplayConfig, ReplayEngine};

use l2s::PolicyKind;
use l2s_sim::{simulate_observed, Clock, PlacementRecord, SimConfig, SimReport};
use l2s_trace::{ClfStream, Trace};
use l2s_util::csv::CsvTable;
use l2s_util::{cast, DetRng, SimTime};
use std::io::{self, BufRead};
use std::path::Path;

/// Infinite-speed replay of a complete trace: runs the DES engine with
/// a placement observer attached and returns every placement it made in
/// decision order, plus the full measurement report.
///
/// This is the parity anchor: the placements are the engine's own, so
/// replaying "as fast as possible" reproduces the simulator's placement
/// sequence byte-for-byte on the same `(config, kind, trace)`.
pub fn replay_trace_fast(
    config: &SimConfig,
    kind: PolicyKind,
    trace: &Trace,
) -> (Vec<PlacementRecord>, SimReport) {
    let mut placements = Vec::new();
    let mut observer = |r: PlacementRecord| placements.push(r);
    let report = simulate_observed(config, kind, trace, &mut observer);
    (placements, report)
}

/// FNV-1a digest of a placement sequence — the compact pin the X10
/// parity experiment writes to CSV so CI byte-compares runs without
/// shipping millions of records.
pub fn placement_checksum(placements: &[PlacementRecord]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    };
    for p in placements {
        eat(p.seq);
        eat(u64::from(cast::index_u32(p.file.index())));
        eat(cast::len_u64(p.initial));
        eat(cast::len_u64(p.service));
        eat(u64::from(p.forwarded));
        eat(p.at.as_nanos());
    }
    h
}

/// Timed replay of a CLF stream: pulls requests from `stream` one line
/// at a time, waits on `clock` until each arrival's log timestamp is
/// due, and feeds them through a [`ReplayEngine`]. `on_snapshot` fires
/// every `cfg.snapshot_every_s` virtual seconds with the metrics so
/// far. Returns the final report once the stream ends.
///
/// Resident state is the stream's (O(distinct files)) plus the
/// engine's (O(nodes + in-flight)); the log itself is never held.
pub fn replay_stream<R: BufRead>(
    cfg: &ReplayConfig,
    stream: &mut ClfStream<R>,
    clock: &mut dyn Clock,
    mut on_snapshot: impl FnMut(&SimReport),
) -> io::Result<SimReport> {
    let mut engine = ReplayEngine::new(cfg.clone());
    let snap_ns = snapshot_period_ns(cfg.snapshot_every_s);
    let mut next_snap_ns = snap_ns;
    let mut hinted = 0usize;
    while let Some(rec) = stream.next_record()? {
        if cfg
            .max_requests
            .is_some_and(|cap| engine.injected() >= cast::len_u64(cap))
        {
            break;
        }
        // Re-hint the file population when it has doubled: size-aware
        // policies (SITA) rebuild their bands from the hint, so doubling
        // amortizes the rebuilds to O(F log F) over the whole run.
        if hinted == 0 || stream.distinct_files() >= hinted * 2 {
            engine.hint_sizes(stream.sizes_kb());
            hinted = stream.distinct_files();
        }
        let at = SimTime::from_secs_f64(rec.at_s);
        clock.wait_until_ns(at.as_nanos());
        while snap_ns > 0 && at.as_nanos() >= next_snap_ns {
            engine.drain_due(SimTime::from_nanos(next_snap_ns));
            on_snapshot(&engine.report());
            next_snap_ns += snap_ns;
        }
        engine.offer(at, cast::index_u32(rec.file.index()), rec.size_kb);
    }
    Ok(engine.finish())
}

/// Timed replay of an in-memory trace (synthetic traces carry no
/// timestamps, so arrivals are a deterministic Poisson process at
/// `rate_rps`, seeded with `seed`). Otherwise identical to
/// [`replay_stream`].
pub fn replay_trace_timed(
    cfg: &ReplayConfig,
    trace: &Trace,
    rate_rps: f64,
    seed: u64,
    clock: &mut dyn Clock,
    mut on_snapshot: impl FnMut(&SimReport),
) -> SimReport {
    let mut engine = ReplayEngine::new(cfg.clone());
    let sizes: Vec<f64> = (0..trace.files().len())
        .map(|i| {
            trace
                .files()
                .size_kb(l2s_trace::FileId::from_raw(cast::index_u32(i)))
        })
        .collect();
    engine.hint_sizes(&sizes);
    let snap_ns = snapshot_period_ns(cfg.snapshot_every_s);
    let mut next_snap_ns = snap_ns;
    let mut rng = DetRng::new(seed);
    let mut at_s = 0.0f64;
    let cap = cfg.max_requests.unwrap_or(usize::MAX);
    for &file in trace.requests().iter().take(cap) {
        at_s += rng.exponential(1.0 / rate_rps.max(f64::MIN_POSITIVE));
        let at = SimTime::from_secs_f64(at_s);
        clock.wait_until_ns(at.as_nanos());
        while snap_ns > 0 && at.as_nanos() >= next_snap_ns {
            engine.drain_due(SimTime::from_nanos(next_snap_ns));
            on_snapshot(&engine.report());
            next_snap_ns += snap_ns;
        }
        engine.offer(
            at,
            cast::index_u32(file.index()),
            trace.files().size_kb(file),
        );
    }
    engine.finish()
}

fn snapshot_period_ns(every_s: f64) -> u64 {
    if every_s > 0.0 {
        SimTime::from_secs_f64(every_s).as_nanos()
    } else {
        0
    }
}

/// Renders a report as one CSV table, using the same
/// [`CsvTable`](l2s_util::csv::CsvTable) writer as the experiment
/// binaries: identical quoting, float rendering (`{:.6}`, matching
/// `row_f64`), and `none` for an absent p99 — so downstream tooling
/// consumes replay output and experiment output interchangeably.
pub fn report_table(report: &SimReport) -> CsvTable {
    let mut table = CsvTable::new([
        "policy",
        "nodes",
        "completed",
        "failed",
        "throughput_rps",
        "miss_rate",
        "forwarded_fraction",
        "cpu_idle",
        "control_msgs_per_request",
        "mean_response_s",
        "p99_response_s",
    ]);
    table.row([
        report.policy.to_string(),
        report.nodes.to_string(),
        report.completed.to_string(),
        report.failed.to_string(),
        format!("{:.6}", report.throughput_rps),
        format!("{:.6}", report.miss_rate),
        format!("{:.6}", report.forwarded_fraction),
        format!("{:.6}", report.cpu_idle),
        format!("{:.6}", report.control_msgs_per_request),
        format!("{:.6}", report.mean_response_s),
        report
            .p99_response_s
            .map_or_else(|| "none".to_string(), |v| format!("{v:.6}")),
    ]);
    table
}

/// Writes [`report_table`] to `path`.
pub fn write_report_csv(report: &SimReport, path: &Path) -> io::Result<()> {
    report_table(report).write_to(path)
}

/// Collects a CLF stream into an in-memory [`Trace`] (for
/// infinite-speed replay of a finished log through the DES). The
/// request *sequence* is held in memory — this is the one deliberately
/// unbounded path, used only when the whole log is wanted at once.
pub fn stream_to_trace<R: BufRead>(name: &str, stream: &mut ClfStream<R>) -> io::Result<Trace> {
    let mut requests = Vec::new();
    while let Some(rec) = stream.next_record()? {
        requests.push(rec.file);
    }
    Ok(Trace::new(
        name,
        l2s_trace::FileSet::new(stream.sizes_kb().to_vec()),
        requests,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use l2s_sim::{simulate, VirtualClock};
    use l2s_trace::TraceSpec;

    fn quick_cfg(n: usize) -> SimConfig {
        SimConfig {
            warmup: false,
            ..SimConfig::quick(n, 1_000.0)
        }
    }

    #[test]
    fn fast_replay_matches_the_engine_byte_for_byte() {
        let trace = TraceSpec::calgary().scaled(120, 2_500).generate(7);
        for kind in [PolicyKind::L2s, PolicyKind::Jsq, PolicyKind::Lard] {
            let cfg = quick_cfg(4);
            let (a, ra) = replay_trace_fast(&cfg, kind, &trace);
            let (b, rb) = replay_trace_fast(&cfg, kind, &trace);
            assert_eq!(a, b, "{}: placements not deterministic", kind.name());
            assert_eq!(ra, rb);
            assert_eq!(placement_checksum(&a), placement_checksum(&b));
            // The observed run is the engine run: reports agree exactly.
            let plain = simulate(&cfg, kind, &trace);
            assert_eq!(ra, plain, "{}: observer perturbed the run", kind.name());
            assert_eq!(a.len() as u64, ra.completed + ra.failed);
        }
    }

    #[test]
    fn checksum_separates_distinct_sequences() {
        let trace = TraceSpec::calgary().scaled(80, 1_500).generate(3);
        let cfg = quick_cfg(4);
        let (a, _) = replay_trace_fast(&cfg, PolicyKind::L2s, &trace);
        let (b, _) = replay_trace_fast(&cfg, PolicyKind::Traditional, &trace);
        assert_ne!(placement_checksum(&a), placement_checksum(&b));
    }

    #[test]
    fn timed_stream_replay_completes_every_request() {
        let log: String = (0..200)
            .map(|i| {
                format!(
                    "h - - [01/Jan/2000:10:{:02}:{:02} +0000] \"GET /f{}.html HTTP/1.0\" 200 4096\n",
                    i / 60,
                    i % 60,
                    i % 16
                )
            })
            .collect();
        let cfg = ReplayConfig::new(PolicyKind::L2s, 4);
        let mut stream = ClfStream::new(log.as_bytes());
        let mut clock = VirtualClock::new();
        let mut snaps = 0;
        let report = replay_stream(&cfg, &mut stream, &mut clock, |_| snaps += 1).unwrap();
        assert_eq!(report.completed, 200);
        assert_eq!(report.failed, 0);
        assert!(report.throughput_rps > 0.0);
        assert!(snaps > 0, "snapshots should fire over a 200 s log");
        assert_eq!(report.policy, "l2s");
    }

    #[test]
    fn timed_trace_replay_is_deterministic() {
        let trace = TraceSpec::nasa().scaled(60, 800).generate(5);
        let cfg = ReplayConfig::new(PolicyKind::Jsq, 4);
        let run = || {
            let mut clock = VirtualClock::new();
            replay_trace_timed(&cfg, &trace, 400.0, 42, &mut clock, |_| {})
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert_eq!(a.completed, 800);
    }

    #[test]
    fn csv_matches_experiment_writer_bytes() {
        let trace = TraceSpec::calgary().scaled(50, 500).generate(1);
        let cfg = quick_cfg(2);
        let (_, report) = replay_trace_fast(&cfg, PolicyKind::L2s, &trace);
        let csv = report_table(&report).to_csv_string();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "policy,nodes,completed,failed,throughput_rps,miss_rate,forwarded_fraction,\
             cpu_idle,control_msgs_per_request,mean_response_s,p99_response_s"
        );
        let row = lines.next().unwrap();
        assert!(row.starts_with("l2s,2,500,0,"));
        // Floats render exactly like CsvTable::row_f64 ({:.6}).
        assert_eq!(
            row.split(',').nth(4).unwrap(),
            format!("{:.6}", report.throughput_rps)
        );
    }

    #[test]
    fn stream_to_trace_round_trips_the_kept_requests() {
        let log = "h - - [01/Jan/2000:10:00:00 +0000] \"GET /a HTTP/1.0\" 200 1024\n\
                   h - - [01/Jan/2000:10:00:01 +0000] \"GET /b HTTP/1.0\" 200 2048\n\
                   h - - [01/Jan/2000:10:00:02 +0000] \"GET /a HTTP/1.0\" 200 1024\n";
        let mut stream = ClfStream::new(log.as_bytes());
        let trace = stream_to_trace("tail", &mut stream).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.files().len(), 2);
        assert_eq!(trace.requests(), &[0, 1, 0]);
    }
}
