//! Replay-vs-DES placement parity, ranged over the Table 2 traces.
//!
//! The infinite-speed replay path (`replay_trace_fast`) promises the
//! exact placement sequence the DES engine produces for the same trace,
//! seed, and configuration. These properties range over all four paper
//! traces, seeds, policies, and cluster sizes and compare the two
//! record streams element for element — any divergence in decision
//! order, forwarding, or timing breaks them immediately.

use l2s::PolicyKind;
use l2s_replay::{placement_checksum, replay_trace_fast};
use l2s_sim::{simulate_observed, PlacementRecord, SimConfig};
use l2s_trace::{Trace, TraceSpec};
use proptest::prelude::*;

/// The four workloads of the paper's Table 2, scaled down so a case
/// (two full simulations) stays fast.
fn table2_spec(which: usize) -> TraceSpec {
    match which {
        0 => TraceSpec::calgary(),
        1 => TraceSpec::clarknet(),
        2 => TraceSpec::nasa(),
        _ => TraceSpec::rutgers(),
    }
}

fn scaled_trace(which: usize, seed: u64) -> Trace {
    table2_spec(which).scaled(150, 2_000).generate(seed)
}

fn pick_policy(which: usize) -> PolicyKind {
    let all = PolicyKind::all();
    all[which % all.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fast_replay_places_identically_to_the_engine(
        which in 0usize..4,
        seed in 0u64..1_000_000,
        policy in 0usize..10,
        nodes in 2usize..6,
    ) {
        let trace = scaled_trace(which, seed % 11);
        let kind = pick_policy(policy);
        let mut cfg = SimConfig::quick(nodes, 700.0);
        cfg.seed = seed;

        let (replayed, report) = replay_trace_fast(&cfg, kind, &trace);

        let mut direct: Vec<PlacementRecord> = Vec::new();
        let mut observer = |r: PlacementRecord| direct.push(r);
        let direct_report = simulate_observed(&cfg, kind, &trace, &mut observer);

        prop_assert_eq!(replayed.len(), direct.len());
        for (i, (a, b)) in replayed.iter().zip(direct.iter()).enumerate() {
            prop_assert_eq!(a, b, "first divergence at placement {}", i);
        }
        prop_assert_eq!(
            placement_checksum(&replayed),
            placement_checksum(&direct)
        );
        prop_assert_eq!(report, direct_report);
        // Without warmup every observed placement is a measured request.
        prop_assert_eq!(replayed.len() as u64, report.completed + report.failed);
    }

    #[test]
    fn fast_replay_checksum_is_stable_across_runs(
        which in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let trace = scaled_trace(which, seed % 5);
        let cfg = SimConfig::quick(4, 700.0);
        let (a, ra) = replay_trace_fast(&cfg, PolicyKind::L2s, &trace);
        let (b, rb) = replay_trace_fast(&cfg, PolicyKind::L2s, &trace);
        prop_assert_eq!(placement_checksum(&a), placement_checksum(&b));
        prop_assert_eq!(ra, rb);
    }
}
