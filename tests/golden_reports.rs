//! Cross-change determinism pin: the engine must reproduce the CSVs in
//! `tests/golden/reports.csv` **byte for byte**. Unlike
//! `tests/determinism.rs` (which compares two runs of the *same* build),
//! this test compares against a committed snapshot, so any behavioral
//! drift — a reordered eviction, an extra control message, a float
//! formatting change — fails the suite even if the new behavior is
//! internally consistent. Refactors of the hot path (dense file-ID
//! interning, indexed eviction heaps) must leave this file untouched.
//!
//! To re-bless after an *intentional* behavior change, run:
//!
//! ```text
//! L2S_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! and commit the updated snapshot alongside the change that justifies it.

use cluster_server_eval::prelude::*;
use cluster_server_eval::util::csv::CsvTable;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/reports.csv";

/// Sampled runs render their p99 exactly as before the `Option` change;
/// a sample-free run (never the case here) renders a distinct token
/// rather than a fake 0.0.
fn render_p99(p99: Option<f64>) -> String {
    match p99 {
        Some(x) => format!("{x:.9}"),
        None => "none".to_string(),
    }
}

/// Renders one policy × cache-policy cell the same way the experiment
/// harness would, covering float formatting as well as raw numbers.
fn render_cell(kind: PolicyKind, cache: CachePolicy) -> String {
    let trace = TraceSpec::clarknet().scaled(600, 8_000).generate(42);
    let mut config = SimConfig::quick(6, trace.working_set_kb() / 4.0);
    config.cache_policy = cache;
    let report = simulate(&config, kind, &trace);

    let mut table = CsvTable::new([
        "policy",
        "completed",
        "throughput_rps",
        "miss_rate",
        "forwarded",
        "control_msgs",
        "mean_response_s",
        "p99_response_s",
    ]);
    table.row([
        report.policy.to_string(),
        report.completed.to_string(),
        format!("{:.9}", report.throughput_rps),
        format!("{:.9}", report.miss_rate),
        format!("{:.9}", report.forwarded_fraction),
        format!("{:.9}", report.control_msgs_per_request),
        format!("{:.9}", report.mean_response_s),
        render_p99(report.p99_response_s),
    ]);
    for n in &report.per_node {
        table.row([
            format!("node{}", n.node),
            n.completed.to_string(),
            format!("{:.9}", n.cpu_utilization),
            format!("{:.9}", n.disk_utilization),
            n.cache_hits.to_string(),
            n.cache_misses.to_string(),
            String::new(),
            String::new(),
        ]);
    }
    table.to_csv_string()
}

fn cache_label(cache: CachePolicy) -> &'static str {
    match cache {
        CachePolicy::Lru => "lru",
        CachePolicy::GreedyDualSize => "gds",
    }
}

fn render_all() -> String {
    let mut out = String::new();
    for cache in [CachePolicy::Lru, CachePolicy::GreedyDualSize] {
        for kind in PolicyKind::all() {
            let _ = writeln!(out, "# cell: {} / {}", kind.name(), cache_label(cache));
            out.push_str(&render_cell(kind, cache));
        }
    }
    out
}

#[test]
fn engine_reproduces_golden_reports_byte_for_byte() {
    let rendered = render_all();
    if std::env::var_os("L2S_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden snapshot");
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing tests/golden/reports.csv; bless it with L2S_BLESS=1");
    assert_eq!(
        rendered, golden,
        "engine output drifted from the committed golden snapshot; if the \
         change is intentional, re-bless with L2S_BLESS=1 and explain why \
         in the commit"
    );
}
