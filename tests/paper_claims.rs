//! Scaled-down checks of the paper's headline claims. Each test mirrors
//! one quantitative statement from the abstract or Section 5.2; the
//! full-scale reproductions live in the `l2s-bench` binaries, these
//! guard the qualitative shape at test speed.

use cluster_server_eval::model::{throughput_increase_surface, ModelParams};
use cluster_server_eval::prelude::*;

fn workload(seed: u64) -> Trace {
    // Working set far larger than one node's cache.
    TraceSpec::clarknet().scaled(2_500, 50_000).generate(seed)
}

fn config(nodes: usize) -> SimConfig {
    let mut cfg = SimConfig::paper_default(nodes);
    cfg.cache_kb = 3_000.0;
    cfg.max_requests = Some(30_000);
    cfg
}

#[test]
fn claim_model_gain_up_to_several_fold_on_16_nodes() {
    // "locality-conscious distribution on a 16-node cluster can increase
    // server throughput ... by up to 7-fold".
    let hits: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
    let sizes: Vec<f64> = vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    let surface = throughput_increase_surface(&ModelParams::default(), &hits, &sizes);
    let (peak, _, _) = surface.peak();
    assert!(
        (5.0..12.0).contains(&peak),
        "peak model gain {peak} not in the several-fold band"
    );
}

#[test]
fn claim_l2s_outperforms_lard_and_traditional() {
    // "outperforming and significantly outscaling both the LARD and
    // traditional servers" — the paper quantifies this at 16 nodes
    // (L2S beats LARD by 33-141% depending on the trace).
    let trace = workload(1);
    let cfg = config(16);
    let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
    let lard = simulate(&cfg, PolicyKind::Lard, &trace);
    let trad = simulate(&cfg, PolicyKind::Traditional, &trace);
    assert!(
        l2s.throughput_rps > lard.throughput_rps,
        "L2S {} !> LARD {}",
        l2s.throughput_rps,
        lard.throughput_rps
    );
    assert!(
        l2s.throughput_rps > trad.throughput_rps * 1.5,
        "L2S {} !>> trad {}",
        l2s.throughput_rps,
        trad.throughput_rps
    );
}

#[test]
fn claim_lard_flattens_with_scale_l2s_keeps_scaling() {
    // "The LARD server performs well for clusters of up to 8 or 12
    // nodes, but flattens out ... as the connection establishment
    // overhead at the front-end node becomes a serious bottleneck."
    let trace = workload(2);
    // Past the front-end ceiling, adding nodes buys LARD almost nothing:
    // compare 16 to 24 nodes (the paper observes the flattening setting
    // in by 12-16 nodes).
    let lard16 = simulate(&config(16), PolicyKind::Lard, &trace);
    let lard24 = simulate(&config(24), PolicyKind::Lard, &trace);
    let l2s16 = simulate(&config(16), PolicyKind::L2s, &trace);
    let l2s24 = simulate(&config(24), PolicyKind::L2s, &trace);

    let lard_scaling = lard24.throughput_rps / lard16.throughput_rps;
    let l2s_scaling = l2s24.throughput_rps / l2s16.throughput_rps;
    assert!(
        lard_scaling < 1.2,
        "LARD should flatten past 16 nodes (16->24 scaling {lard_scaling})"
    );
    assert!(
        l2s_scaling > lard_scaling,
        "L2S (x{l2s_scaling}) should outscale LARD (x{lard_scaling})"
    );
}

#[test]
fn claim_traditional_idle_constant_l2s_idle_improves() {
    // "the CPU idle times of the traditional server stay roughly
    // constant as we increase the number of cluster nodes ... the L2S
    // idle times always improve".
    let trace = workload(3);
    let trad4 = simulate(&config(4), PolicyKind::Traditional, &trace);
    let trad16 = simulate(&config(16), PolicyKind::Traditional, &trace);
    assert!(
        (trad4.cpu_idle - trad16.cpu_idle).abs() < 0.15,
        "traditional idle moved: {} -> {}",
        trad4.cpu_idle,
        trad16.cpu_idle
    );
    let l2s4 = simulate(&config(4), PolicyKind::L2s, &trace);
    assert!(
        l2s4.cpu_idle < trad4.cpu_idle,
        "L2S ({}) should idle less than traditional ({})",
        l2s4.cpu_idle,
        trad4.cpu_idle
    );
}

#[test]
fn claim_l2s_forwards_fewer_requests_than_lard() {
    // "for clusters of up to 4 nodes L2S forwards at least 15% fewer
    // requests than the LARD server".
    let trace = workload(4);
    let cfg = config(4);
    let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
    let lard = simulate(&cfg, PolicyKind::Lard, &trace);
    assert!(lard.forwarded_fraction > 0.999);
    assert!(
        l2s.forwarded_fraction < lard.forwarded_fraction - 0.15,
        "L2S forwards {:.1}%, LARD {:.1}%",
        l2s.forwarded_fraction * 100.0,
        lard.forwarded_fraction * 100.0
    );
}

#[test]
fn claim_memory_growth_helps_traditional_most() {
    // "increasing the size of the memories improves the performance of
    // the traditional server tremendously ... affects the other two
    // servers much less significantly".
    let trace = workload(5);
    // Small = 1/6 of the working set per node (aggregate still covers it
    // for the locality-conscious servers); large = 3x that. Mirrors the
    // paper's 32 MB -> 128 MB comparison where L2S/LARD miss rates are
    // already low at the small size.
    let ws = trace.working_set_kb();
    let gain = |kind: PolicyKind| {
        let mut small = config(8);
        small.cache_kb = ws / 6.0;
        let mut large = config(8);
        large.cache_kb = ws / 2.0;
        simulate(&large, kind, &trace).throughput_rps
            / simulate(&small, kind, &trace).throughput_rps
    };
    let trad_gain = gain(PolicyKind::Traditional);
    let l2s_gain = gain(PolicyKind::L2s);
    assert!(
        trad_gain > l2s_gain,
        "traditional gain {trad_gain} should exceed L2S gain {l2s_gain}"
    );
    assert!(trad_gain > 1.5, "traditional barely improved: {trad_gain}");
}
