//! Property-based invariants across the workspace (proptest).

use cluster_server_eval::cluster::LruCache;
use cluster_server_eval::devs::EventQueue;
use cluster_server_eval::model::{ModelParams, QueueModel, ServerKind};
use cluster_server_eval::policy::PolicyKind;
use cluster_server_eval::prelude::*;
use cluster_server_eval::zipf::{harmonic, ZipfLaw};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue always pops in non-decreasing time order, with
    /// FIFO tie-breaking, regardless of the insertion pattern.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = (SimTime::ZERO, 0usize);
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last.0);
            if t == last.0 && last.1 != 0 {
                prop_assert!(i > last.1 || last.0 == SimTime::ZERO && last.1 == 0 || i > 0);
            }
            last = (t, i);
        }
    }

    /// The LRU cache never exceeds capacity and its index never
    /// disagrees with its recency list, for arbitrary op sequences.
    #[test]
    fn lru_respects_capacity(ops in prop::collection::vec((0u32..100, 1.0f64..50.0, any::<bool>()), 1..400)) {
        let mut cache = LruCache::new(200.0);
        for (file, kb, is_touch) in ops {
            if is_touch {
                cache.touch(file);
            } else {
                cache.insert(file, kb);
            }
            prop_assert!(cache.used_kb() <= 200.0 + 1e-9);
            prop_assert_eq!(cache.iter_mru().count(), cache.len());
        }
    }

    /// `z(n, F)` is a CDF in `n`: within [0, 1], non-decreasing,
    /// z(F) = 1, for arbitrary populations and exponents.
    #[test]
    fn zipf_z_is_a_cdf(files in 1.0f64..100_000.0, alpha in 0.0f64..2.0) {
        let law = ZipfLaw::new(files, alpha);
        let mut prev = 0.0;
        for k in 0..=20 {
            let n = files * k as f64 / 20.0;
            let z = law.z(n);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&z));
            prop_assert!(z >= prev - 1e-12);
            prev = z;
        }
        prop_assert!((law.z(files) - 1.0).abs() < 1e-9);
    }

    /// The continuous harmonic extension is monotone in `n` and `1/α`.
    #[test]
    fn harmonic_monotonicity(n in 1.0f64..10_000.0, alpha in 0.0f64..2.0) {
        prop_assert!(harmonic(n + 1.0, alpha) >= harmonic(n, alpha));
        prop_assert!(harmonic(n, alpha) >= harmonic(n, alpha + 0.1) - 1e-12);
    }

    /// Conscious hit rate dominates oblivious, and the bound never goes
    /// negative/zero, for arbitrary model operating points.
    #[test]
    fn model_conscious_dominates(
        hlo in 0.01f64..1.0,
        size in 1.0f64..128.0,
        nodes in 1usize..32,
        repl in 0.0f64..1.0,
    ) {
        let params = ModelParams {
            nodes,
            replication: repl,
            avg_file_kb: size,
            ..ModelParams::default()
        };
        let model = QueueModel::new(params).unwrap();
        let lo = model.derived_from_hlo(ServerKind::LocalityOblivious, hlo);
        let lc = model.derived_from_hlo(ServerKind::LocalityConscious, hlo);
        prop_assert!(lc.hit_rate >= lo.hit_rate - 1e-12);
        prop_assert!((0.0..=1.0).contains(&lc.forward_fraction));
        let bound = model.max_throughput_derived(&lc);
        prop_assert!(bound.is_finite() && bound > 0.0);
    }

    /// Every policy keeps its connection accounting consistent under an
    /// arbitrary interleaving of arrivals and completions.
    #[test]
    fn policies_conserve_connections(
        ops in prop::collection::vec((0u32..40, any::<bool>()), 1..300),
        kind_idx in 0usize..5,
    ) {
        let kind = PolicyKind::all()[kind_idx];
        let n = 4;
        let mut policy = kind.build(n);
        let mut in_flight: Vec<(usize, u32)> = Vec::new();
        let now = SimTime::ZERO;
        for (file, complete) in ops {
            if complete && !in_flight.is_empty() {
                let (node, f) = in_flight.swap_remove(0);
                policy.complete(now, node, f.into());
            } else {
                let initial = policy.arrival_node().unwrap();
                let a = policy.assign(now, initial, file.into());
                prop_assert!(a.service < n);
                in_flight.push((a.service, file));
            }
            let total: u32 = (0..n).map(|i| policy.open_connections(i)).sum();
            prop_assert_eq!(total as usize, in_flight.len());
        }
    }
}

proptest! {
    // Whole-simulator property tests are expensive; keep the case count
    // low but the coverage broad.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The simulator completes every injected request and produces sane
    /// aggregates for arbitrary small workloads and cluster shapes.
    #[test]
    fn simulator_total_completion(
        files in 50usize..300,
        requests in 500usize..3_000,
        nodes in 1usize..6,
        kind_idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let trace = TraceSpec::clarknet().scaled(files, requests).generate(seed);
        let cfg = SimConfig::quick(nodes, 1_000.0);
        let kind = PolicyKind::all()[kind_idx];
        let report = simulate(&cfg, kind, &trace);
        prop_assert_eq!(report.completed, requests as u64);
        prop_assert!(report.throughput_rps > 0.0);
        prop_assert!((0.0..=1.0).contains(&report.miss_rate));
        let sum: u64 = report.per_node.iter().map(|n| n.completed).sum();
        prop_assert_eq!(sum, report.completed);
    }
}
