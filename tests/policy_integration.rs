//! Policy/simulator integration across every Table 2 workload shape.

use cluster_server_eval::prelude::*;

fn quick_config(nodes: usize, cache_kb: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(nodes);
    cfg.cache_kb = cache_kb;
    cfg.max_requests = Some(20_000);
    cfg.warmup = false;
    cfg
}

#[test]
fn all_policies_complete_all_paper_workload_shapes() {
    for (i, spec) in TraceSpec::paper_presets().into_iter().enumerate() {
        let trace = spec.scaled(800, 20_000).generate(100 + i as u64);
        let cfg = quick_config(4, 2_000.0);
        for kind in PolicyKind::all() {
            let report = simulate(&cfg, kind, &trace);
            assert_eq!(
                report.completed,
                20_000,
                "{} lost requests on {}",
                kind.name(),
                spec.name
            );
            assert!(report.throughput_rps > 0.0);
            assert!((0.0..=1.0).contains(&report.miss_rate));
            assert!((0.0..=1.0).contains(&report.forwarded_fraction));
            assert!((0.0..=1.0).contains(&report.cpu_idle));
        }
    }
}

#[test]
fn per_node_completions_sum_to_total() {
    let trace = TraceSpec::rutgers().scaled(600, 15_000).generate(7);
    let cfg = quick_config(4, 2_000.0);
    for kind in PolicyKind::all() {
        let report = simulate(&cfg, kind, &trace);
        let sum: u64 = report.per_node.iter().map(|n| n.completed).sum();
        assert_eq!(sum, report.completed, "{}", kind.name());
    }
}

#[test]
fn locality_policies_aggregate_cache_capacity() {
    // With a working set ~4x one node's cache, the locality-conscious
    // policies should show much lower aggregate miss rates on 8 nodes.
    let trace = TraceSpec::clarknet().scaled(1_500, 25_000).generate(8);
    let ws = trace.working_set_kb();
    let cfg = quick_config(8, ws / 4.0);
    let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
    let pure = simulate(&cfg, PolicyKind::PureLocality, &trace);
    let trad = simulate(&cfg, PolicyKind::Traditional, &trace);
    assert!(
        l2s.miss_rate < trad.miss_rate / 2.0,
        "l2s {} vs trad {}",
        l2s.miss_rate,
        trad.miss_rate
    );
    assert!(
        pure.miss_rate < trad.miss_rate / 2.0,
        "pure-locality {} vs trad {}",
        pure.miss_rate,
        trad.miss_rate
    );
}

#[test]
fn round_robin_balances_but_misses_like_traditional() {
    let trace = TraceSpec::calgary().scaled(1_000, 20_000).generate(9);
    let cfg = quick_config(4, 2_000.0);
    let rr = simulate(&cfg, PolicyKind::RoundRobin, &trace);
    let trad = simulate(&cfg, PolicyKind::Traditional, &trace);
    // Both are locality-oblivious: similar miss rates.
    assert!(
        (rr.miss_rate - trad.miss_rate).abs() < 0.08,
        "rr {} vs trad {}",
        rr.miss_rate,
        trad.miss_rate
    );
    // Round-robin spreads completions evenly.
    assert!(
        rr.completion_imbalance() < 0.05,
        "{}",
        rr.completion_imbalance()
    );
}

#[test]
fn pure_locality_suffers_load_imbalance_on_skewed_traffic() {
    // alpha > 1 concentrates traffic on few files; static partitioning
    // then concentrates it on few nodes — the imbalance the paper warns
    // about for strict locality.
    let trace = TraceSpec::calgary().scaled(1_000, 20_000).generate(10);
    let cfg = quick_config(8, 20_000.0);
    let pure = simulate(&cfg, PolicyKind::PureLocality, &trace);
    let l2s = simulate(&cfg, PolicyKind::L2s, &trace);
    assert!(
        pure.completion_imbalance() > l2s.completion_imbalance(),
        "pure {} should be more imbalanced than l2s {}",
        pure.completion_imbalance(),
        l2s.completion_imbalance()
    );
}

#[test]
fn control_traffic_stays_bounded() {
    let trace = TraceSpec::nasa().scaled(800, 20_000).generate(11);
    let cfg = quick_config(8, 3_000.0);
    for kind in PolicyKind::all() {
        let report = simulate(&cfg, kind, &trace);
        assert!(
            report.control_msgs_per_request < 2.0 * cfg.nodes as f64,
            "{}: {} control msgs/request",
            kind.name(),
            report.control_msgs_per_request
        );
    }
}

#[test]
fn facade_prelude_round_trip() {
    // The doc-quickstart path through the facade crate.
    let trace = TraceSpec::clarknet().scaled(500, 10_000).generate(12);
    let base = SimConfig::quick(4, 1_500.0);
    let l2s = simulate(&base, PolicyKind::L2s, &trace);
    let trad = simulate(&base, PolicyKind::Traditional, &trace);
    assert!(l2s.throughput_rps > trad.throughput_rps);
}
