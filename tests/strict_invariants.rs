//! Proves the `strict-invariants` feature compiles the `invariant!`
//! checks into *every* build profile. Run as
//! `cargo test --release --features strict-invariants` — in a plain
//! release build these tests are compiled out, because without the
//! feature the checks are `debug_assert!`s and would not fire.

#![cfg(feature = "strict-invariants")]

use cluster_server_eval::devs::EventQueue;
use cluster_server_eval::policy::{Distributor, Traditional};
use cluster_server_eval::util::SimTime;

#[test]
#[should_panic(expected = "causality violation")]
fn scheduling_in_the_past_aborts_even_in_release() {
    let mut q = EventQueue::new();
    q.schedule(SimTime::from_nanos(100), ());
    q.pop();
    q.schedule(SimTime::from_nanos(99), ());
}

#[test]
#[should_panic(expected = "load conservation violated")]
fn completion_without_assignment_aborts_even_in_release() {
    let mut policy = Traditional::new(4);
    // Node 2 never had a request assigned; completing one there breaks
    // per-node load conservation.
    policy.complete(SimTime::ZERO, 2, 0.into());
}

#[test]
fn clean_runs_pass_with_checks_armed() {
    use cluster_server_eval::prelude::*;
    let trace = TraceSpec::clarknet().scaled(300, 4_000).generate(11);
    let config = SimConfig::quick(4, trace.working_set_kb() / 4.0);
    for kind in PolicyKind::all() {
        let report = simulate(&config, kind, &trace);
        assert_eq!(report.completed as usize, trace.len().min(4_000));
    }
}
