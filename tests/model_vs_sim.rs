//! Cross-crate integration: the analytic model is an *upper bound* on
//! what the simulator can achieve, and the two agree on who the
//! bottleneck is.

use cluster_server_eval::model::{ModelParams, QueueModel, ServerKind};
use cluster_server_eval::prelude::*;
use cluster_server_eval::trace::TraceStats;

fn scaled_trace(seed: u64) -> Trace {
    TraceSpec::calgary().scaled(1_500, 40_000).generate(seed)
}

/// Model parameters matching a simulation configuration and trace.
fn matching_model(stats: &TraceStats, config: &SimConfig, replication: f64) -> QueueModel {
    QueueModel::new(ModelParams {
        nodes: config.nodes,
        replication,
        alpha: stats.alpha.max(0.05),
        cache_kb: config.cache_kb,
        avg_file_kb: stats.avg_request_kb,
        ..ModelParams::default()
    })
    .expect("valid parameters")
}

#[test]
fn simulated_throughput_never_exceeds_model_bound() {
    let trace = scaled_trace(11);
    let stats = TraceStats::compute(&trace);
    for nodes in [2usize, 4, 8] {
        let mut config = SimConfig::paper_default(nodes);
        config.cache_kb = 4_000.0;
        config.max_requests = Some(25_000);
        let model = matching_model(&stats, &config, 0.15);
        let derived =
            model.derived_from_population(ServerKind::LocalityConscious, stats.num_files as f64);
        let bound = model.max_throughput_derived(&derived);
        for kind in [PolicyKind::L2s, PolicyKind::Lard, PolicyKind::Traditional] {
            let report = simulate(&config, kind, &trace);
            assert!(
                report.throughput_rps <= bound * 1.02,
                "{} at {nodes} nodes: {} r/s exceeds model bound {bound}",
                kind.name(),
                report.throughput_rps
            );
        }
    }
}

#[test]
fn l2s_lands_within_a_modest_factor_of_the_bound() {
    // The paper's headline: L2S throughput within ~22% of the model at
    // 16 nodes. At integration-test scale we accept a looser factor but
    // require the same ballpark.
    let trace = scaled_trace(13);
    let stats = TraceStats::compute(&trace);
    let mut config = SimConfig::paper_default(8);
    config.cache_kb = 4_000.0;
    config.max_requests = Some(30_000);
    let model = matching_model(&stats, &config, 0.15);
    let derived =
        model.derived_from_population(ServerKind::LocalityConscious, stats.num_files as f64);
    let bound = model.max_throughput_derived(&derived);
    let report = simulate(&config, PolicyKind::L2s, &trace);
    let ratio = report.throughput_rps / bound;
    assert!(
        ratio > 0.4,
        "L2S at only {:.0}% of the model bound ({} vs {bound})",
        ratio * 100.0,
        report.throughput_rps
    );
}

#[test]
fn oblivious_model_tracks_traditional_server_bottleneck() {
    // The traditional server on a working set >> cache is disk-bound in
    // both the model and the simulator.
    let trace = scaled_trace(17);
    let stats = TraceStats::compute(&trace);
    let mut config = SimConfig::paper_default(4);
    config.cache_kb = 2_000.0;
    config.max_requests = Some(25_000);

    let model = matching_model(&stats, &config, 1.0);
    let derived =
        model.derived_from_population(ServerKind::LocalityOblivious, stats.num_files as f64);
    let lambda = model.max_throughput_derived(&derived) * 0.99;
    let solution = model.solve_derived(&derived, lambda).expect("stable");
    assert_eq!(solution.bottleneck().expect("stations").name, "disk");

    let report = simulate(&config, PolicyKind::Traditional, &trace);
    let max_disk = report
        .per_node
        .iter()
        .map(|n| n.disk_utilization)
        .fold(0.0, f64::max);
    let max_cpu = report
        .per_node
        .iter()
        .map(|n| n.cpu_utilization)
        .fold(0.0, f64::max);
    assert!(
        max_disk > max_cpu,
        "simulator should be disk-bound too (disk {max_disk}, cpu {max_cpu})"
    );
    assert!(max_disk > 0.9, "disk not saturated: {max_disk}");
}

#[test]
fn model_hit_rate_matches_simulated_miss_rate_for_traditional() {
    // For the oblivious server the model's H is z(C/S, F); the simulated
    // LRU under a stationary Zipf stream should land in the same region
    // (LRU is not ideal-capacity, so allow a generous band).
    let trace = scaled_trace(19);
    let stats = TraceStats::compute(&trace);
    let mut config = SimConfig::paper_default(2);
    config.cache_kb = 4_000.0;
    config.max_requests = Some(40_000);
    config.warmup = true;

    let model = matching_model(&stats, &config, 1.0);
    let derived =
        model.derived_from_population(ServerKind::LocalityOblivious, stats.num_files as f64);
    let model_miss = 1.0 - derived.hit_rate;

    let report = simulate(&config, PolicyKind::Traditional, &trace);
    assert!(
        report.miss_rate > model_miss * 0.5 && report.miss_rate < model_miss * 2.5,
        "simulated miss {} vs model miss {model_miss}",
        report.miss_rate
    );
}
