//! Calibration of the synthetic Table 2 traces against everything the
//! paper reports about them.

use cluster_server_eval::prelude::*;
use cluster_server_eval::trace::TraceStats;

/// Capped-size generation used by these tests (full populations, fewer
/// requests, so the suite stays fast).
fn capped(spec: &TraceSpec) -> Trace {
    let mut spec = spec.clone();
    spec.num_requests = spec.num_requests.min(250_000);
    spec.generate(42)
}

#[test]
fn table2_statistics_match() {
    for spec in TraceSpec::paper_presets() {
        let trace = capped(&spec);
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.num_files, spec.num_files, "{}", spec.name);
        assert!(
            (stats.avg_file_kb / spec.avg_file_kb - 1.0).abs() < 0.03,
            "{}: avg file {} vs {}",
            spec.name,
            stats.avg_file_kb,
            spec.avg_file_kb
        );
        assert!(
            (stats.avg_request_kb / spec.avg_request_kb - 1.0).abs() < 0.15,
            "{}: avg request {} vs {}",
            spec.name,
            stats.avg_request_kb,
            spec.avg_request_kb
        );
        assert!(
            (stats.alpha - spec.alpha).abs() < 0.25,
            "{}: alpha {} vs {}",
            spec.name,
            stats.alpha,
            spec.alpha
        );
    }
}

#[test]
fn working_sets_span_the_papers_range() {
    // Section 5.1: "the traces' working sets are fairly small (from 288
    // MBytes to 717 MBytes)". Full-scale request streams reach the whole
    // population; verify the population sizes land in that range.
    for spec in TraceSpec::paper_presets() {
        let trace = spec.scaled(spec.num_files, 1).generate(1);
        let total_mb = trace.files().total_kb() / 1024.0;
        assert!(
            (250.0..800.0).contains(&total_mb),
            "{}: population {total_mb:.0} MB outside the paper's band",
            spec.name
        );
    }
}

#[test]
fn sequential_32mb_miss_rates_in_papers_band() {
    // Section 5.1: "These characteristics and simulation setup produce
    // cache miss rates between 9 and 28% assuming a sequential server
    // with 32 MBytes of main memory." Allow a small margin at the top
    // for the capped request streams.
    for spec in TraceSpec::paper_presets() {
        let trace = capped(&spec);
        let config = SimConfig {
            max_requests: Some(200_000),
            ..SimConfig::paper_default(1)
        };
        let report = simulate(&config, PolicyKind::Traditional, &trace);
        assert!(
            (0.06..0.33).contains(&report.miss_rate),
            "{}: sequential 32 MB miss rate {:.1}% outside the paper's 9-28% band",
            spec.name,
            report.miss_rate * 100.0
        );
    }
}

#[test]
fn temporal_locality_lowers_miss_rates() {
    // The recency component exists precisely to land in that band; turning
    // it off must raise the sequential miss rate.
    let mut with = TraceSpec::rutgers();
    with.num_requests = 150_000;
    let mut without = with.clone();
    without.temporal = 0.0;
    let config = SimConfig {
        max_requests: None,
        ..SimConfig::paper_default(1)
    };
    let miss_with = simulate(&config, PolicyKind::Traditional, &with.generate(7)).miss_rate;
    let miss_without = simulate(&config, PolicyKind::Traditional, &without.generate(7)).miss_rate;
    assert!(
        miss_with < miss_without - 0.1,
        "temporal locality had no effect: {miss_with} vs {miss_without}"
    );
}
