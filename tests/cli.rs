//! End-to-end tests of the `clusterlab` CLI binary.

use std::process::Command;

fn clusterlab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_clusterlab"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn model_subcommand_reports_bound_and_bottleneck() {
    let out = clusterlab(&["model", "--nodes", "16", "--hit", "0.8", "--size", "4"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("throughput bound"), "{text}");
    assert!(text.contains("bottleneck"), "{text}");
    assert!(text.contains("LocalityConscious"), "{text}");
}

#[test]
fn model_oblivious_kind_selectable() {
    let out = clusterlab(&["model", "--kind", "lo", "--hit", "0.5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LocalityOblivious"), "{text}");
    assert!(text.contains("forwarded (Q)    : 0.000"), "{text}");
}

#[test]
fn trace_subcommand_prints_statistics() {
    let out = clusterlab(&[
        "trace",
        "--trace",
        "rutgers",
        "--files",
        "500",
        "--requests",
        "5000",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("files           : 500"), "{text}");
    assert!(text.contains("requests        : 5000"), "{text}");
    assert!(text.contains("zipf alpha"), "{text}");
}

#[test]
fn simulate_subcommand_runs_a_small_cluster() {
    let out = clusterlab(&[
        "simulate",
        "--trace",
        "calgary",
        "--nodes",
        "4",
        "--policy",
        "l2s",
        "--files",
        "400",
        "--requests",
        "5000",
        "--cache-mb",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("completed         : 5000"), "{text}");
    assert!(text.contains("throughput"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = clusterlab(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn unknown_policy_is_a_clean_error() {
    let out = clusterlab(&["simulate", "--policy", "quantum"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown policy"), "{err}");
}

#[test]
fn bare_option_names_the_offending_flag() {
    // Regression: a trailing `--nodes` with no value used to be stored
    // as the empty string and reported as `invalid value ""`.
    let out = clusterlab(&["model", "--nodes"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("missing value for --nodes"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn help_prints_usage() {
    let out = clusterlab(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("clusterlab simulate"), "{text}");
}
