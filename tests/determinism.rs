//! Determinism regression: the same seed and configuration must produce
//! bit-identical results on every run. This is the property the l2s-lint
//! rules (no hash iteration, no wall clock, no entropy) exist to protect,
//! checked end-to-end through the full engine.

use cluster_server_eval::prelude::*;
use cluster_server_eval::util::csv::CsvTable;

fn run_once(kind: PolicyKind) -> (SimReport, String) {
    let trace = TraceSpec::clarknet().scaled(600, 8_000).generate(42);
    let config = SimConfig::quick(6, trace.working_set_kb() / 4.0);
    let report = simulate(&config, kind, &trace);

    // Render the same CSV the experiment harness would write, so the
    // comparison covers float formatting as well as the raw numbers.
    let mut table = CsvTable::new([
        "policy",
        "completed",
        "throughput_rps",
        "miss_rate",
        "forwarded",
        "control_msgs",
        "mean_response_s",
        "p99_response_s",
    ]);
    table.row([
        report.policy.to_string(),
        report.completed.to_string(),
        format!("{:.9}", report.throughput_rps),
        format!("{:.9}", report.miss_rate),
        format!("{:.9}", report.forwarded_fraction),
        format!("{:.9}", report.control_msgs_per_request),
        format!("{:.9}", report.mean_response_s),
        report
            .p99_response_s
            .map(|x| format!("{x:.9}"))
            .unwrap_or_else(|| "none".to_string()),
    ]);
    for n in &report.per_node {
        table.row([
            format!("node{}", n.node),
            n.completed.to_string(),
            format!("{:.9}", n.cpu_utilization),
            format!("{:.9}", n.disk_utilization),
            n.cache_hits.to_string(),
            n.cache_misses.to_string(),
            String::new(),
            String::new(),
        ]);
    }
    (report, table.to_csv_string())
}

#[test]
fn identical_seeds_produce_byte_identical_reports() {
    for kind in PolicyKind::all() {
        let (report_a, csv_a) = run_once(kind);
        let (report_b, csv_b) = run_once(kind);
        assert_eq!(
            report_a,
            report_b,
            "{}: reports diverged across identical runs",
            kind.name()
        );
        assert_eq!(
            csv_a,
            csv_b,
            "{}: rendered CSV diverged across identical runs",
            kind.name()
        );
    }
}

#[test]
fn trace_generation_is_deterministic() {
    let a = TraceSpec::clarknet().scaled(600, 8_000).generate(7);
    let b = TraceSpec::clarknet().scaled(600, 8_000).generate(7);
    assert_eq!(a.len(), b.len());
    assert_eq!(a.working_set_kb(), b.working_set_kb());
    assert_eq!(
        a.requests(),
        b.requests(),
        "request streams diverged for equal seeds"
    );
}

#[test]
fn different_seeds_actually_differ() {
    let a = TraceSpec::clarknet().scaled(600, 8_000).generate(1);
    let b = TraceSpec::clarknet().scaled(600, 8_000).generate(2);
    assert_ne!(
        a.requests(),
        b.requests(),
        "seed is not reaching the generator"
    );
}
