#!/usr/bin/env bash
# Regenerates every paper table/figure with a single in-process run, so
# trace generation is shared across experiments. Quick mode by default;
# L2S_BENCH_FULL=1 for full-fidelity runs.
set -euo pipefail
mkdir -p results/logs
cargo run --release -p l2s-bench --bin all_figures | tee results/logs/all_figures.txt
