#!/usr/bin/env bash
# Regenerates every paper table/figure. Quick mode by default;
# L2S_BENCH_FULL=1 for full-fidelity runs.
set -euo pipefail
mkdir -p results/logs
for bin in fig03_oblivious_surface fig04_conscious_surface fig05_throughput_increase \
           exp_memory_sweep exp_replication table2_traces \
           fig07_calgary fig08_clarknet fig09_nasa fig10_rutgers \
           exp_miss_rates exp_idle_times exp_forwarding exp_memory_sim exp_sensitivity \
           exp_lard_variants exp_latency_curve exp_persistent exp_dfs exp_cache_policy; do
    echo "=== $bin ==="
    cargo run --release -p l2s-bench --bin "$bin" | tee "results/logs/$bin.txt"
done
