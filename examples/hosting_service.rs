//! The paper's motivating scenario (Section 1): a WWW hosting service
//! where pages from many renters share one cluster — a file population
//! far larger than any single node's memory. This example builds such a
//! workload, then shows how each server organization copes as the
//! cluster grows.
//!
//! ```sh
//! cargo run --release --example hosting_service
//! ```

use cluster_server_eval::prelude::*;
use cluster_server_eval::trace::TraceStats;

fn main() {
    // 20 000 files averaging 36 KB: a ~700 MB working set, with the
    // flatter popularity curve (alpha = 0.75) typical of hosting many
    // independent sites.
    let spec = TraceSpec {
        name: "hosting".into(),
        num_files: 20_000,
        avg_file_kb: 36.0,
        num_requests: 400_000,
        avg_request_kb: 28.0,
        alpha: 0.75,
        size_sigma: 1.4,
        temporal: 0.5,
        temporal_window: 1_000,
    };
    let trace = spec.generate(2026);
    let stats = TraceStats::compute(&trace);
    println!(
        "hosting workload: {} files, working set {:.0} MB, avg request {:.1} KB, alpha {:.2}",
        stats.num_files,
        stats.working_set_kb / 1024.0,
        stats.avg_request_kb,
        stats.alpha
    );

    // 32 MB of cache per node: each node alone covers <5% of the working
    // set. Exactly the regime the paper says hosting services live in.
    println!("\nthroughput (requests/s) with 32 MB caches:");
    println!(
        "{:>6} {:>12} {:>12} {:>12} | {:>16}",
        "nodes", "traditional", "lard", "l2s", "l2s miss rate"
    );
    for n in [2usize, 4, 8, 16] {
        let mut config = SimConfig::paper_default(n);
        config.max_requests = Some(150_000);
        let trad = simulate(&config, PolicyKind::Traditional, &trace);
        let lard = simulate(&config, PolicyKind::Lard, &trace);
        let l2s = simulate(&config, PolicyKind::L2s, &trace);
        println!(
            "{n:>6} {:>12.0} {:>12.0} {:>12.0} | {:>15.1}%",
            trad.throughput_rps,
            lard.throughput_rps,
            l2s.throughput_rps,
            l2s.miss_rate * 100.0
        );
    }

    println!(
        "\nWith a working set ~20x one node's memory, the traditional server thrashes \
         its\nidentical per-node caches at every cluster size, while L2S aggregates \
         the memories\nand keeps scaling — the paper's core argument for \
         locality-conscious distribution\nas files get larger and more numerous."
    );
}
