//! Capacity planning with the analytic model.
//!
//! The paper's queuing model answers sizing questions *before* building
//! anything: given an expected working set, file-size mix, and target
//! request rate, how many nodes does a locality-conscious cluster need —
//! and how many would a locality-oblivious one burn for the same goal?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use cluster_server_eval::model::{ModelParams, QueueModel, ServerKind};

/// Smallest cluster size whose modeled throughput bound reaches
/// `target_rps`, or `None` if even `max_nodes` cannot.
fn nodes_needed(
    base: &ModelParams,
    kind: ServerKind,
    hlo: f64,
    target_rps: f64,
    max_nodes: usize,
) -> Option<usize> {
    (1..=max_nodes).find(|&n| {
        let params = ModelParams { nodes: n, ..*base };
        let model = QueueModel::new(params).expect("valid parameters");
        model.max_throughput(kind, hlo) >= target_rps
    })
}

fn main() {
    // Scenario: a hosting service with 512 MB of per-node memory serving
    // mostly small pages (24 KB average); the working set is large enough
    // that one node's cache only hits 60% of requests.
    let base = ModelParams {
        cache_kb: 512.0 * 1024.0,
        avg_file_kb: 24.0,
        replication: 0.15,
        ..ModelParams::default()
    };
    let hlo = 0.60;
    println!("scenario: 24 KB average files, 512 MB memories, single-node hit rate 60%\n");

    println!(
        "{:>12} {:>26} {:>26}",
        "target r/s", "locality-conscious nodes", "locality-oblivious nodes"
    );
    for target in [1_000.0, 2_500.0, 5_000.0, 10_000.0, 20_000.0] {
        let lc = nodes_needed(&base, ServerKind::LocalityConscious, hlo, target, 64);
        let lo = nodes_needed(&base, ServerKind::LocalityOblivious, hlo, target, 64);
        let show = |x: Option<usize>| x.map_or("> 64".to_string(), |n| n.to_string());
        println!("{target:>12.0} {:>26} {:>26}", show(lc), show(lo));
    }

    // Where does each cluster bottleneck at its operating point?
    let model = QueueModel::new(ModelParams { nodes: 16, ..base }).expect("valid parameters");
    for kind in [ServerKind::LocalityConscious, ServerKind::LocalityOblivious] {
        let bound = model.max_throughput(kind, hlo);
        let solution = model
            .solve(kind, hlo, bound * 0.95)
            .expect("below saturation");
        let bottleneck = solution.bottleneck().expect("solver emits stations");
        println!(
            "\n{kind:?} at 16 nodes: bound {bound:.0} r/s, bottleneck = {} \
             (utilization {:.0}%), mean response {:.1} ms at 95% load",
            bottleneck.name,
            bottleneck.utilization * 100.0,
            solution.response_s * 1e3
        );
    }

    println!(
        "\nThe oblivious cluster is disk-bound (its per-node hit rate never improves \
         with scale),\nso it needs several times the hardware for the same throughput."
    );
}
