//! Quickstart: simulate a small cluster under two request-distribution
//! policies and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluster_server_eval::prelude::*;

fn main() {
    // A Clarknet-like workload, scaled down: 2 000 files (~23 MB working
    // set), 60 000 requests.
    let trace = TraceSpec::clarknet().scaled(2_000, 60_000).generate(7);
    println!(
        "workload: {} requests over {} files, working set {:.1} MB, avg request {:.1} KB",
        trace.len(),
        trace.files().len(),
        trace.working_set_kb() / 1024.0,
        trace.avg_request_kb()
    );

    // An 8-node cluster whose per-node cache holds ~1/4 of the working
    // set — locality matters here.
    let mut config = SimConfig::paper_default(8);
    config.cache_kb = trace.working_set_kb() / 4.0;

    println!(
        "\n{:>14} {:>12} {:>10} {:>10} {:>10}",
        "policy", "throughput", "miss", "forwarded", "cpu idle"
    );
    for kind in [PolicyKind::Traditional, PolicyKind::Lard, PolicyKind::L2s] {
        let report = simulate(&config, kind, &trace);
        println!(
            "{:>14} {:>8.0} r/s {:>9.1}% {:>9.1}% {:>9.1}%",
            report.policy,
            report.throughput_rps,
            report.miss_rate * 100.0,
            report.forwarded_fraction * 100.0,
            report.cpu_idle * 100.0
        );
    }

    println!(
        "\nL2S turns the cluster's memories into one big cache (low miss rate) while \
         spreading load\nacross all nodes — no dedicated front-end, no single point of failure."
    );
}
