//! Trace ingestion and characterization: parse a Common Log Format
//! access log (the format of the paper's four traces), report its
//! Table 2-style statistics, and compare against a synthetic trace
//! calibrated to the same numbers.
//!
//! ```sh
//! cargo run --release --example trace_analysis [path/to/access.log]
//! ```
//!
//! Without an argument, a small embedded sample log is analyzed.

use cluster_server_eval::trace::{clf, TraceSpec, TraceStats};

const SAMPLE_LOG: &str = r#"
alpha.example.com - - [01/Mar/2000:08:00:01 -0500] "GET /index.html HTTP/1.0" 200 4096
beta.example.com - - [01/Mar/2000:08:00:02 -0500] "GET /img/banner.gif HTTP/1.0" 200 24576
alpha.example.com - - [01/Mar/2000:08:00:03 -0500] "GET /index.html HTTP/1.0" 200 4096
gamma.example.com - - [01/Mar/2000:08:00:04 -0500] "GET /docs/paper.ps HTTP/1.0" 200 524288
beta.example.com - - [01/Mar/2000:08:00:05 -0500] "GET /index.html HTTP/1.0" 200 4096
delta.example.com - - [01/Mar/2000:08:00:06 -0500] "GET /img/banner.gif HTTP/1.0" 200 24576
alpha.example.com - - [01/Mar/2000:08:00:07 -0500] "GET /missing.html HTTP/1.0" 404 512
gamma.example.com - - [01/Mar/2000:08:00:08 -0500] "POST /cgi-bin/vote HTTP/1.0" 200 128
delta.example.com - - [01/Mar/2000:08:00:09 -0500] "GET /index.html HTTP/1.0" 200 4096
beta.example.com - - [01/Mar/2000:08:00:10 -0500] "GET /partial.zip HTTP/1.0" 200 -
"#;

fn print_stats(label: &str, stats: &TraceStats) {
    println!("{label}:");
    println!("  files requested : {}", stats.distinct_files);
    println!("  file population : {}", stats.num_files);
    println!("  requests        : {}", stats.num_requests);
    println!("  avg file size   : {:.1} KB", stats.avg_file_kb);
    println!("  avg request size: {:.1} KB", stats.avg_request_kb);
    println!(
        "  working set     : {:.1} MB",
        stats.working_set_kb / 1024.0
    );
    println!("  Zipf alpha (fit): {:.2}", stats.alpha);
}

fn main() {
    let arg = std::env::args().nth(1);
    let (name, text) = match &arg {
        Some(path) => (
            path.clone(),
            std::fs::read_to_string(path).expect("readable log file"),
        ),
        None => ("embedded sample".to_string(), SAMPLE_LOG.to_string()),
    };

    let trace = clf::parse_log(&name, &text);
    println!("parsed {} complete GET requests from {name}\n", trace.len());
    print_stats("real log", &TraceStats::compute(&trace));

    // Now generate a synthetic Calgary (Table 2 row 1) at reduced scale
    // and show it matches its calibration targets.
    let spec = TraceSpec::calgary().scaled(4_000, 150_000);
    let synthetic = spec.generate(99);
    println!();
    print_stats(
        "synthetic calgary (scaled to 4000 files / 150k requests)",
        &TraceStats::compute(&synthetic),
    );
    println!(
        "\ntargets were: avg file {:.1} KB, avg request {:.1} KB, alpha {:.2}",
        spec.avg_file_kb, spec.avg_request_kb, spec.alpha
    );
}
