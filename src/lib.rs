//! `cluster-server-eval` — a reproduction of *Evaluating Cluster-Based
//! Network Servers* (Enrique V. Carrera and Ricardo Bianchini, HPDC 2000).
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`model`] — the analytic open queuing-network model (Figures 3–6),
//! * [`policy`] — the L2S, LARD, and traditional request-distribution
//!   policies (the paper's primary contribution),
//! * [`sim`] — the trace-driven cluster simulator (Figures 7–10),
//! * [`trace`] — WWW trace parsing, statistics, and Table 2-calibrated
//!   synthetic workload generators,
//! * the substrates they are built on: [`devs`] (discrete-event kernel),
//!   [`net`] (cluster network), [`cluster`] (node hardware), [`zipf`]
//!   (popularity laws), and [`util`] (time/RNG/stats).
//!
//! # Quickstart
//!
//! ```
//! use cluster_server_eval::prelude::*;
//!
//! // Synthesize a small Clarknet-like workload, then compare L2S with the
//! // traditional locality-oblivious server on an 8-node cluster whose
//! // per-node cache holds a quarter of the working set — the regime
//! // where distribution policy decides everything.
//! let trace = TraceSpec::clarknet().scaled(2_000, 20_000).generate(7);
//! let config = SimConfig::quick(8, trace.working_set_kb() / 4.0);
//!
//! let l2s = simulate(&config, PolicyKind::L2s, &trace);
//! let trad = simulate(&config, PolicyKind::Traditional, &trace);
//! assert!(l2s.throughput_rps > trad.throughput_rps);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use l2s_cluster as cluster;
pub use l2s_devs as devs;
pub use l2s_model as model;
pub use l2s_net as net;
pub use l2s_sim as sim;
pub use l2s_trace as trace;
pub use l2s_util as util;
pub use l2s_zipf as zipf;

/// The request-distribution policies (the paper's core contribution).
pub use l2s as policy;

/// The most commonly used items, for `use cluster_server_eval::prelude::*`.
pub mod prelude {
    pub use l2s::PolicyKind;
    pub use l2s_cluster::CachePolicy;
    pub use l2s_model::{ModelParams, QueueModel, ServerKind};
    pub use l2s_sim::{simulate, SimConfig, SimReport};
    pub use l2s_trace::{Trace, TraceSpec};
    pub use l2s_util::{DetRng, SimDuration, SimTime};
    pub use l2s_zipf::{ZipfLaw, ZipfSampler};
}
