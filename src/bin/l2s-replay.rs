//! `l2s-replay` — live Common Log Format replay front-end.
//!
//! Tails an access log (file or stdin) and drives any request
//! distribution policy against it online, in real time, scaled time, or
//! as fast as possible:
//!
//! ```text
//! l2s-replay --log access.log --policy l2s --nodes 8 --speed 60
//! tail -f access.log | l2s-replay --log - --policy jsq
//! l2s-replay --trace calgary --policy lard --as-fast-as-possible
//! ```
//!
//! Timed modes stream the log with bounded memory and print a metrics
//! snapshot every `--snapshot-secs` of virtual time. With
//! `--as-fast-as-possible` on a synthetic `--trace`, the run goes
//! through the DES engine with a placement observer attached, so the
//! placement sequence is identical to `clusterlab simulate` on the same
//! configuration (the X10 parity experiment pins this in CI).

use cluster_server_eval::policy::PolicyKind;
use cluster_server_eval::prelude::*;
use l2s_replay::{
    placement_checksum, replay_stream, replay_trace_fast, replay_trace_timed, write_report_csv,
    ReplayConfig,
};
use l2s_sim::{Clock, SimReport, VirtualClock, WallClock};
use l2s_trace::ClfStream;
use std::io::BufRead;
use std::path::PathBuf;

const USAGE: &str = "\
l2s-replay — live CLF replay front-end (HPDC 2000 reproduction)

USAGE:
  l2s-replay --log FILE|-   [--policy NAME] [--nodes N] [--cache-mb MB]
             [--speed X | --as-fast-as-possible] [--snapshot-secs S]
             [--requests N] [--csv FILE]
  l2s-replay --trace calgary|clarknet|nasa|rutgers [--policy NAME] [--nodes N]
             [--cache-mb MB] [--files N] [--requests N] [--seed S] [--rate RPS]
             [--speed X | --as-fast-as-possible] [--snapshot-secs S]
             [--csv FILE] [--checksum]

MODES:
  --speed X              scaled wall-clock pacing (1.0 = real time; default)
  --as-fast-as-possible  no pacing; with --trace this drives the DES engine
                         and reproduces its placement sequence exactly

Every run prints periodic SimReport snapshots (timed modes) and a final
report; --csv writes it in the experiment writers' CSV format.
";

struct Opts {
    log: Option<String>,
    trace: Option<String>,
    policy: PolicyKind,
    nodes: usize,
    cache_mb: f64,
    files: usize,
    requests: Option<usize>,
    seed: u64,
    rate_rps: f64,
    speed: f64,
    fast: bool,
    snapshot_secs: f64,
    csv: Option<PathBuf>,
    checksum: bool,
}

fn parse_opts(argv: Vec<String>) -> Result<Opts, String> {
    let mut opts = Opts {
        log: None,
        trace: None,
        policy: PolicyKind::L2s,
        nodes: 8,
        cache_mb: 32.0,
        files: 2_000,
        requests: None,
        seed: 42,
        rate_rps: 500.0,
        speed: 1.0,
        fast: false,
        snapshot_secs: 10.0,
        csv: None,
        checksum: false,
    };
    let mut it = argv.into_iter().peekable();
    while let Some(tok) = it.next() {
        let Some(key) = tok.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {tok:?}"));
        };
        // Flags without values first; everything else requires one.
        match key {
            "as-fast-as-possible" | "fast" => {
                opts.fast = true;
                continue;
            }
            "checksum" => {
                opts.checksum = true;
                continue;
            }
            "help" | "h" => return Err(String::new()),
            _ => {}
        }
        let value = it
            .next_if(|v| !v.starts_with("--"))
            .ok_or_else(|| format!("missing value for --{key}"))?;
        let num = |what: &str, v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("invalid value {v:?} for --{what}"))
        };
        match key {
            "log" => opts.log = Some(value),
            "trace" => opts.trace = Some(value),
            "policy" => {
                opts.policy = PolicyKind::all()
                    .into_iter()
                    .find(|k| k.name() == value)
                    .ok_or_else(|| {
                        let names: Vec<&str> = PolicyKind::all().iter().map(|k| k.name()).collect();
                        format!("unknown policy {value:?} (expected {})", names.join("|"))
                    })?;
            }
            "nodes" => opts.nodes = num("nodes", &value)? as usize,
            "cache-mb" => opts.cache_mb = num("cache-mb", &value)?,
            "files" => opts.files = num("files", &value)? as usize,
            "requests" => opts.requests = Some(num("requests", &value)? as usize),
            "seed" => opts.seed = num("seed", &value)? as u64,
            "rate" => opts.rate_rps = num("rate", &value)?,
            "speed" => {
                let s = num("speed", &value)?;
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!("--speed must be positive and finite, got {s}"));
                }
                opts.speed = s;
            }
            "snapshot-secs" => opts.snapshot_secs = num("snapshot-secs", &value)?,
            "csv" => opts.csv = Some(PathBuf::from(value)),
            other => return Err(format!("unknown option --{other}")),
        }
    }
    if opts.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    match (&opts.log, &opts.trace) {
        (None, None) => Err("one of --log or --trace is required".into()),
        (Some(_), Some(_)) => Err("--log and --trace are mutually exclusive".into()),
        _ => Ok(opts),
    }
}

fn trace_by_name(name: &str) -> Result<TraceSpec, String> {
    match name {
        "calgary" => Ok(TraceSpec::calgary()),
        "clarknet" => Ok(TraceSpec::clarknet()),
        "nasa" => Ok(TraceSpec::nasa()),
        "rutgers" => Ok(TraceSpec::rutgers()),
        other => Err(format!(
            "unknown trace {other:?} (expected calgary|clarknet|nasa|rutgers)"
        )),
    }
}

fn replay_config(opts: &Opts) -> ReplayConfig {
    let mut cfg = ReplayConfig::new(opts.policy, opts.nodes);
    cfg.cache_kb = opts.cache_mb * 1024.0;
    cfg.snapshot_every_s = opts.snapshot_secs;
    cfg.max_requests = opts.requests;
    cfg
}

fn print_snapshot(r: &SimReport) {
    println!(
        "[t={:>8.1}s] completed {:>9}  failed {:>6}  {:>8.0} r/s  miss {:>5.2}%  \
         fwd {:>5.2}%  idle {:>5.2}%  mean {:>7.2} ms",
        r.elapsed.as_secs_f64(),
        r.completed,
        r.failed,
        r.throughput_rps,
        r.miss_rate * 100.0,
        r.forwarded_fraction * 100.0,
        r.cpu_idle * 100.0,
        r.mean_response_s * 1e3
    );
}

fn print_final(r: &SimReport) {
    println!("policy            : {}", r.policy);
    println!("nodes             : {}", r.nodes);
    println!("completed         : {}", r.completed);
    println!("failed            : {}", r.failed);
    println!("elapsed (virtual) : {:.1} s", r.elapsed.as_secs_f64());
    println!("throughput        : {:.0} requests/s", r.throughput_rps);
    println!("miss rate         : {:.2}%", r.miss_rate * 100.0);
    println!("forwarded         : {:.2}%", r.forwarded_fraction * 100.0);
    println!("cpu idle          : {:.2}%", r.cpu_idle * 100.0);
    println!("mean response     : {:.2} ms", r.mean_response_s * 1e3);
    match r.p99_response_s {
        Some(p99) => println!("p99 response      : {:.2} ms", p99 * 1e3),
        None => println!("p99 response      : n/a (no samples recorded)"),
    }
    println!(
        "control messages  : {:.2} per request",
        r.control_msgs_per_request
    );
}

/// Runs a timed replay over any CLF byte source.
fn run_stream<R: BufRead>(
    opts: &Opts,
    reader: R,
    clock: &mut dyn Clock,
) -> Result<SimReport, String> {
    let cfg = replay_config(opts);
    let mut stream = ClfStream::new(reader);
    let report = replay_stream(&cfg, &mut stream, clock, print_snapshot)
        .map_err(|e| format!("reading log: {e}"))?;
    let stats = stream.stats();
    println!(
        "log lines         : {} read, {} kept, {} dropped{}{}",
        stats.lines,
        stats.kept,
        stats.dropped,
        if stats.out_of_order > 0 {
            format!(", {} out-of-order timestamps clamped", stats.out_of_order)
        } else {
            String::new()
        },
        if stats.truncated_tail {
            ", truncated final line discarded"
        } else {
            ""
        }
    );
    Ok(report)
}

fn run(opts: &Opts) -> Result<(), String> {
    let report = match (&opts.log, &opts.trace) {
        (Some(path), None) => {
            let mut clock: Box<dyn Clock> = if opts.fast {
                Box::new(VirtualClock::new())
            } else {
                Box::new(WallClock::new(opts.speed))
            };
            if path == "-" {
                let stdin = std::io::stdin();
                run_stream(opts, stdin.lock(), clock.as_mut())?
            } else {
                let file = std::fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
                run_stream(opts, std::io::BufReader::new(file), clock.as_mut())?
            }
        }
        (None, Some(name)) => {
            let spec = trace_by_name(name)?;
            let requests = opts.requests.unwrap_or(150_000);
            let trace = spec
                .scaled(opts.files.min(spec.num_files), requests)
                .generate(opts.seed);
            if opts.fast {
                // DES-backed infinite speed: placement parity with
                // `clusterlab simulate` on the same configuration.
                let mut config = SimConfig::paper_default(opts.nodes);
                config.cache_kb = opts.cache_mb * 1024.0;
                config.seed = opts.seed;
                let (placements, report) = replay_trace_fast(&config, opts.policy, &trace);
                if opts.checksum {
                    println!(
                        "placements        : {}{} (checksum {:016x})",
                        placements.len(),
                        if config.warmup {
                            " incl. cache-warmup pass"
                        } else {
                            ""
                        },
                        placement_checksum(&placements)
                    );
                }
                report
            } else {
                let cfg = replay_config(opts);
                let mut clock = WallClock::new(opts.speed);
                replay_trace_timed(
                    &cfg,
                    &trace,
                    opts.rate_rps,
                    opts.seed,
                    &mut clock,
                    print_snapshot,
                )
            }
        }
        _ => unreachable!("parse_opts enforces exactly one source"),
    };
    print_final(&report);
    if let Some(path) = &opts.csv {
        write_report_csv(&report, path).map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("CSV: {}", path.display());
    }
    Ok(())
}

fn main() {
    let opts = match parse_opts(std::env::args().skip(1).collect()) {
        Ok(o) => o,
        Err(e) if e.is_empty() => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&opts) {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}
