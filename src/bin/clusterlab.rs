//! `clusterlab` — command-line front door to the cluster-server-eval
//! workspace.
//!
//! ```text
//! clusterlab model    [--nodes N] [--hit H] [--size KB] [--replication R] [--kind lc|lo]
//! clusterlab simulate [--trace NAME] [--nodes N] [--policy P] [--cache-mb MB]
//!                     [--requests N] [--files N] [--seed S] [--persistent MEAN] [--dfs]
//! clusterlab trace    [--trace NAME | --log FILE] [--requests N] [--files N] [--seed S]
//! clusterlab compare  [--trace NAME] [--nodes N] [--cache-mb MB] [--requests N]
//! ```
//!
//! Argument parsing is deliberately dependency-free; see [`args`].

use cluster_server_eval::model::{ModelParams, QueueModel, ServerKind};
use cluster_server_eval::policy::PolicyKind;
use cluster_server_eval::prelude::*;
use cluster_server_eval::trace::{clf, TraceStats};

mod args {
    //! A tiny `--flag value` parser.

    use std::collections::BTreeMap;

    /// Parsed command line: a subcommand plus `--key value` options.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Parsed {
        /// First positional argument.
        pub command: String,
        /// `--key value` pairs; bare `--key` stores an empty value.
        pub options: BTreeMap<String, String>,
    }

    /// Parses `argv[1..]`. Returns `Err` with a message on malformed
    /// input (option before subcommand, missing value for a non-flag).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Parsed, String> {
        let mut it = argv.into_iter().peekable();
        let command = match it.next() {
            Some(c) if !c.starts_with("--") => c,
            Some(c) => return Err(format!("expected a subcommand before {c}")),
            None => return Err("expected a subcommand".into()),
        };
        let mut options = BTreeMap::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok}"));
            };
            // A following token that isn't itself an option is this
            // option's value; a bare flag stores the empty string.
            let value = it.next_if(|v| !v.starts_with("--")).unwrap_or_default();
            options.insert(key.to_string(), value);
        }
        Ok(Parsed { command, options })
    }

    impl Parsed {
        /// Fetches an option parsed as `T`, with a default. A bare
        /// `--key` (no value) is reported as missing, naming the flag,
        /// instead of surfacing as `invalid value ""`.
        pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
            match self.options.get(key) {
                None => Ok(default),
                Some(raw) if raw.is_empty() => Err(format!("missing value for --{key}")),
                Some(raw) => raw
                    .parse()
                    .map_err(|_| format!("invalid value {raw:?} for --{key}")),
            }
        }

        /// Fetches a string option.
        pub fn get_str(&self, key: &str, default: &str) -> String {
            self.options
                .get(key)
                .cloned()
                .unwrap_or_else(|| default.to_string())
        }

        /// True when the bare flag is present.
        pub fn flag(&self, key: &str) -> bool {
            self.options.contains_key(key)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn argv(s: &str) -> Vec<String> {
            s.split_whitespace().map(String::from).collect()
        }

        #[test]
        fn parses_command_and_options() {
            let p = parse(argv("simulate --nodes 8 --policy l2s --dfs")).unwrap();
            assert_eq!(p.command, "simulate");
            assert_eq!(p.get::<usize>("nodes", 1).unwrap(), 8);
            assert_eq!(p.get_str("policy", "x"), "l2s");
            assert!(p.flag("dfs"));
            assert!(!p.flag("missing"));
        }

        #[test]
        fn defaults_apply() {
            let p = parse(argv("model")).unwrap();
            assert_eq!(p.get::<f64>("hit", 0.8).unwrap(), 0.8);
        }

        #[test]
        fn rejects_missing_command() {
            assert!(parse(argv("")).is_err());
            assert!(parse(argv("--nodes 4")).is_err());
        }

        #[test]
        fn rejects_bad_values() {
            let p = parse(argv("model --nodes banana")).unwrap();
            assert!(p.get::<usize>("nodes", 1).is_err());
        }

        #[test]
        fn rejects_stray_positionals() {
            assert!(parse(argv("simulate extra")).is_err());
        }

        #[test]
        fn bare_typed_option_reports_missing_value() {
            // Regression: `--nodes` with no value used to surface as
            // `invalid value "" for --nodes`, hiding what went wrong.
            let p = parse(argv("model --nodes")).unwrap();
            let err = p.get::<usize>("nodes", 1).unwrap_err();
            assert!(err.contains("missing value for --nodes"), "{err}");
        }

        #[test]
        fn bare_flag_followed_by_an_option_stays_a_flag() {
            let p = parse(argv("simulate --dfs --nodes 4")).unwrap();
            assert!(p.flag("dfs"));
            assert_eq!(p.get::<usize>("nodes", 1).unwrap(), 4);
        }
    }
}

fn trace_by_name(name: &str) -> Result<TraceSpec, String> {
    match name {
        "calgary" => Ok(TraceSpec::calgary()),
        "clarknet" => Ok(TraceSpec::clarknet()),
        "nasa" => Ok(TraceSpec::nasa()),
        "rutgers" => Ok(TraceSpec::rutgers()),
        other => Err(format!(
            "unknown trace {other:?} (expected calgary|clarknet|nasa|rutgers)"
        )),
    }
}

fn policy_by_name(name: &str) -> Result<PolicyKind, String> {
    PolicyKind::all()
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = PolicyKind::all().iter().map(|k| k.name()).collect();
            format!(
                "unknown policy {name:?} (expected one of {})",
                names.join("|")
            )
        })
}

fn build_trace(p: &args::Parsed) -> Result<Trace, String> {
    if let Some(log) = p.options.get("log") {
        let text = std::fs::read_to_string(log).map_err(|e| format!("reading {log}: {e}"))?;
        return Ok(clf::parse_log(log, &text));
    }
    let spec = trace_by_name(&p.get_str("trace", "calgary"))?;
    let files = p.get("files", spec.num_files.min(8_000))?;
    let requests = p.get("requests", 200_000usize)?;
    let seed = p.get("seed", 42u64)?;
    Ok(spec.scaled(files, requests).generate(seed))
}

fn cmd_model(p: &args::Parsed) -> Result<(), String> {
    let params = ModelParams {
        nodes: p.get("nodes", 16usize)?,
        replication: p.get("replication", 0.0f64)?,
        avg_file_kb: p.get("size", 16.0f64)?,
        cache_kb: p.get("cache-mb", 128.0f64)? * 1024.0,
        ..ModelParams::default()
    };
    let hit = p.get("hit", 0.8f64)?;
    let kind = match p.get_str("kind", "lc").as_str() {
        "lc" => ServerKind::LocalityConscious,
        "lo" => ServerKind::LocalityOblivious,
        other => return Err(format!("unknown kind {other:?} (expected lc|lo)")),
    };
    let model = QueueModel::new(params).map_err(|e| e.to_string())?;
    let derived = model.derived_from_hlo(kind, hit);
    let bound = model.max_throughput_derived(&derived);
    println!("server kind      : {kind:?}");
    println!("hit rate (H)     : {:.3}", derived.hit_rate);
    println!("replicated hit(h): {:.3}", derived.replicated_hit);
    println!("forwarded (Q)    : {:.3}", derived.forward_fraction);
    println!("throughput bound : {bound:.0} requests/s");
    if let Some(solution) = model.solve_derived(&derived, bound * 0.95) {
        let bottleneck = solution
            .bottleneck()
            .ok_or("model solution has no stations to report a bottleneck from")?;
        println!(
            "at 95% load      : {:.2} ms mean response, bottleneck = {} ({:.0}% busy)",
            solution.response_s * 1e3,
            bottleneck.name,
            bottleneck.utilization * 100.0
        );
    }
    Ok(())
}

fn cmd_simulate(p: &args::Parsed) -> Result<(), String> {
    let trace = build_trace(p)?;
    let mut config = SimConfig::paper_default(p.get("nodes", 8usize)?);
    config.cache_kb = p.get("cache-mb", 32.0f64)? * 1024.0;
    config.persistent_mean = p.get("persistent", 1.0f64)?;
    config.dfs_remote = p.flag("dfs");
    config.seed = p.get("seed", 42u64)?;
    let policy = policy_by_name(&p.get_str("policy", "l2s"))?;
    let report = simulate(&config, policy, &trace);
    println!("policy            : {}", report.policy);
    println!("nodes             : {}", report.nodes);
    println!("completed         : {}", report.completed);
    println!(
        "throughput        : {:.0} requests/s",
        report.throughput_rps
    );
    println!("miss rate         : {:.2}%", report.miss_rate * 100.0);
    println!(
        "forwarded         : {:.2}%",
        report.forwarded_fraction * 100.0
    );
    println!("cpu idle          : {:.2}%", report.cpu_idle * 100.0);
    println!(
        "router utilization: {:.2}%",
        report.router_utilization * 100.0
    );
    println!("mean response     : {:.2} ms", report.mean_response_s * 1e3);
    match report.p99_response_s {
        Some(p99) => println!("p99 response      : {:.2} ms", p99 * 1e3),
        None => println!("p99 response      : n/a (no samples recorded)"),
    }
    println!(
        "control messages  : {:.2} per request",
        report.control_msgs_per_request
    );
    Ok(())
}

fn cmd_trace(p: &args::Parsed) -> Result<(), String> {
    let trace = build_trace(p)?;
    let stats = TraceStats::compute(&trace);
    println!("name            : {}", stats.name);
    println!("files           : {}", stats.num_files);
    println!("requests        : {}", stats.num_requests);
    println!("avg file size   : {:.1} KB", stats.avg_file_kb);
    println!("avg request size: {:.1} KB", stats.avg_request_kb);
    println!("working set     : {:.1} MB", stats.working_set_kb / 1024.0);
    println!("distinct files  : {}", stats.distinct_files);
    println!("zipf alpha (fit): {:.2}", stats.alpha);
    Ok(())
}

fn cmd_compare(p: &args::Parsed) -> Result<(), String> {
    let trace = build_trace(p)?;
    let mut config = SimConfig::paper_default(p.get("nodes", 8usize)?);
    config.cache_kb = p.get("cache-mb", 32.0f64)? * 1024.0;
    println!(
        "{:>16} {:>12} {:>8} {:>10} {:>9}",
        "policy", "throughput", "miss", "forwarded", "idle"
    );
    for kind in PolicyKind::all() {
        let r = simulate(&config, kind, &trace);
        println!(
            "{:>16} {:>8.0} r/s {:>7.1}% {:>9.1}% {:>8.1}%",
            r.policy,
            r.throughput_rps,
            r.miss_rate * 100.0,
            r.forwarded_fraction * 100.0,
            r.cpu_idle * 100.0
        );
    }
    Ok(())
}

const USAGE: &str = "\
clusterlab — cluster-based network server evaluation (HPDC 2000 reproduction)

USAGE:
  clusterlab model    [--nodes N] [--hit H] [--size KB] [--replication R]
                      [--cache-mb MB] [--kind lc|lo]
  clusterlab simulate [--trace calgary|clarknet|nasa|rutgers | --log FILE]
                      [--nodes N] [--policy NAME] [--cache-mb MB]
                      [--requests N] [--files N] [--seed S]
                      [--persistent MEAN] [--dfs]
  clusterlab trace    [--trace NAME | --log FILE] [--requests N] [--files N]
  clusterlab compare  [--trace NAME] [--nodes N] [--cache-mb MB] [--requests N]
";

fn main() {
    let parsed = match args::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "model" => cmd_model(&parsed),
        "simulate" => cmd_simulate(&parsed),
        "trace" => cmd_trace(&parsed),
        "compare" => cmd_compare(&parsed),
        "help" | "-h" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}
